// Sharded-snapshot equivalence suite: a ShardedSnapshot — built
// shard-parallel, advanced per shard by delta-log records, with dirty
// shards rebuilt alone — must be bit-identical to BOTH a monolithic
// GraphSnapshot and the live Graph at every point: accessors, tombstones,
// adjacency order, candidate collection, whole DetectAll violation streams
// across shard counts {1,2,4,8} x thread counts {1,2,4,8} on all three
// generator domains, and serving commits against a monolithic twin. Also
// covers the dirty-shard-only Advance accounting and ServeOptions
// validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "eval/experiment.h"
#include "graph/graph.h"
#include "graph/sharded_snapshot.h"
#include "graph/snapshot.h"
#include "grr/rule_parser.h"
#include "match/matcher.h"
#include "repair/engine.h"
#include "serve/repair_service.h"
#include "snapshot_equivalence.h"
#include "stress_driver.h"

namespace grepair {
namespace {

// Advances `ss` with everything the graph journaled since `watermark`,
// returning the new watermark.
uint64_t AdvanceTo(const Graph& g, ShardedSnapshot* ss, uint64_t watermark,
                   double fraction,
                   ShardedSnapshot::AdvanceStats* stats = nullptr) {
  auto [records, count] = g.DeltaLogSince(watermark);
  ShardedSnapshot::AdvanceStats st =
      ss->Advance(g, records, count, fraction);
  if (stats != nullptr) *stats = st;
  return g.DeltaLogEnd();
}

// The tri-way check: advanced sharded store == live graph == fresh
// monolithic snapshot (and a fresh sharded build of the same state).
void ExpectShardedEquivalent(const Graph& g, const ShardedSnapshot& ss) {
  ASSERT_NO_FATAL_FAILURE(ExpectViewEquivalent(g, ss));
  GraphSnapshot mono(g);
  EXPECT_EQ(mono.Nodes(), ss.Nodes());
  EXPECT_EQ(mono.Edges(), ss.Edges());
  EXPECT_EQ(mono.NumNodes(), ss.NumNodes());
  EXPECT_EQ(mono.NumEdges(), ss.NumEdges());
  ShardedSnapshot fresh(g, ss.NumShards());
  EXPECT_EQ(fresh.Nodes(), ss.Nodes());
  EXPECT_EQ(fresh.Edges(), ss.Edges());
}

// ----------------------------------------------------------- build basics

TEST(ShardedSnapshotTest, ShardsPartitionTheStore) {
  KgOptions gopt;
  gopt.num_persons = 80;
  gopt.num_cities = 8;
  gopt.num_countries = 5;
  gopt.num_orgs = 6;
  auto b = MakeKgBundle(gopt, InjectOptions{});
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  const Graph& g = b.value().graph;

  ShardedSnapshot ss(g, 5);
  EXPECT_EQ(ss.NumShards(), 5u);
  EXPECT_EQ(ss.NumStorageShards(), 5u);
  EXPECT_TRUE(ss.IsSnapshotView());
  EXPECT_EQ(ss.AsSnapshot(), nullptr);  // not a monolithic GraphSnapshot

  // Every shard owns exactly the ids the partition function assigns it,
  // and the per-shard counts sum back to the whole.
  size_t nodes = 0, edges = 0;
  for (size_t s = 0; s < ss.NumShards(); ++s) {
    nodes += ss.shard(s).NumNodes();
    edges += ss.shard(s).NumEdges();
    EXPECT_EQ(ss.shard(s).shard().index, s);
    for (NodeId n : ss.shard(s).Nodes())
      EXPECT_EQ(StorageShardOfNode(n, 5), s);
    for (EdgeId e : ss.shard(s).Edges())
      EXPECT_EQ(StorageShardOfNode(ss.shard(s).Edge(e).src, 5), s);
  }
  EXPECT_EQ(nodes, g.NumNodes());
  EXPECT_EQ(edges, g.NumEdges());
  ExpectShardedEquivalent(g, ss);
}

TEST(ShardedSnapshotTest, ShardCountIsClamped) {
  auto vocab = MakeVocabulary();
  Graph g(vocab);
  g.AddNode(vocab->Label("A"));
  EXPECT_EQ(ShardedSnapshot(g, 0).NumShards(), 1u);
  EXPECT_EQ(ShardedSnapshot(g, 100000).NumShards(),
            ShardedSnapshot::kMaxShards);
}

// ------------------------------------------------------ randomized stress

class ShardedSnapshotStress : public ::testing::TestWithParam<uint64_t> {};

// Random scripts: shard the store mid-history, keep mutating (with undo
// rounds interleaved, exercising tombstone revival and adjacency-tail
// order), and Advance in slices with a permissive fraction (patch path).
// The sharded store must track the live graph exactly at every point.
TEST_P(ShardedSnapshotStress, RandomScriptsAdvanceToLiveState) {
  StressDriver d(GetParam());
  d.g.EnableDeltaLog();
  for (int i = 0; i < 30; ++i) d.Step();

  ShardedSnapshot ss(d.g, 3);
  uint64_t watermark = d.g.DeltaLogEnd();
  for (int round = 0; round < 6; ++round) {
    size_t mark = d.g.JournalSize();
    for (int i = 0; i < 15; ++i) d.Step();
    if (d.rng.NextBernoulli(0.5)) {
      size_t back = mark + d.rng.NextBounded(d.g.JournalSize() - mark + 1);
      ASSERT_TRUE(d.g.UndoTo(back).ok());
    }
    watermark = AdvanceTo(d.g, &ss, watermark, /*fraction=*/1.0);
    ASSERT_NO_FATAL_FAILURE(ExpectShardedEquivalent(d.g, ss))
        << "seed " << GetParam() << " round " << round;
  }
  d.VerifyIndexes();
}

// Same scripts with fraction 0: every touched shard is rebuilt instead of
// patched — the other Advance path must land on the identical state.
TEST_P(ShardedSnapshotStress, ForcedShardRebuildsAdvanceToLiveState) {
  StressDriver d(GetParam() + 77);
  d.g.EnableDeltaLog();
  for (int i = 0; i < 25; ++i) d.Step();

  ShardedSnapshot ss(d.g, 4);
  uint64_t watermark = d.g.DeltaLogEnd();
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 12; ++i) d.Step();
    ShardedSnapshot::AdvanceStats st;
    watermark = AdvanceTo(d.g, &ss, watermark, /*fraction=*/0.0, &st);
    EXPECT_EQ(st.shards_patched, 0u);
    ASSERT_NO_FATAL_FAILURE(ExpectShardedEquivalent(d.g, ss))
        << "seed " << GetParam() << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedSnapshotStress,
                         ::testing::Range<uint64_t>(0, 12));

// ------------------------------------------------- dirty-shard accounting

// Edits confined to one shard's nodes leave every other shard untouched:
// Advance neither patches nor rebuilds them, and only the dirty shard's
// PatchedEdits moves. This is the locality the sharded store exists for —
// a hot region stops forcing whole-store work.
TEST(ShardedSnapshotTest, AdvanceTouchesOnlyDirtyShards) {
  auto vocab = MakeVocabulary();
  Graph g(vocab);
  g.EnableDeltaLog();
  SymbolId person = vocab->Label("Person"), knows = vocab->Label("knows");
  for (int i = 0; i < 32; ++i) g.AddNode(person);

  constexpr size_t kShards = 4;
  ShardedSnapshot ss(g, kShards);
  uint64_t watermark = g.DeltaLogEnd();

  // Shard 1 nodes only: ids congruent to 1 mod 4.
  std::vector<EdgeId> added;
  for (NodeId a = 1; a + 4 < 32; a += 4)
    added.push_back(g.AddEdge(a, a + 4, knows).value());

  ShardedSnapshot::AdvanceStats st;
  watermark = AdvanceTo(g, &ss, watermark, /*fraction=*/1.0, &st);
  EXPECT_EQ(st.shards_patched, 1u);
  EXPECT_EQ(st.shards_rebuilt, 0u);
  EXPECT_EQ(ss.shard(1).PatchedEdits(), added.size());
  for (size_t s : {0u, 2u, 3u}) EXPECT_EQ(ss.shard(s).PatchedEdits(), 0u);
  ExpectShardedEquivalent(g, ss);

  // The same dirty stream with a zero fraction rebuilds shard 1 ALONE.
  for (EdgeId e : added) ASSERT_TRUE(g.RemoveEdge(e).ok());
  watermark = AdvanceTo(g, &ss, watermark, /*fraction=*/0.0, &st);
  EXPECT_EQ(st.shards_patched, 0u);
  EXPECT_EQ(st.shards_rebuilt, 1u);
  EXPECT_EQ(ss.shard(1).PatchedEdits(), 0u);  // fresh build resets dirt
  ExpectShardedEquivalent(g, ss);

  // A cross-shard edge (src shard 2, dst shard 3) dirties exactly both.
  ASSERT_TRUE(g.AddEdge(2, 3, knows).ok());
  AdvanceTo(g, &ss, watermark, /*fraction=*/1.0, &st);
  EXPECT_EQ(st.shards_patched + st.shards_rebuilt, 2u);
  ExpectShardedEquivalent(g, ss);
}

TEST(ShardedSnapshotTest, MemoryRollsUpAcrossShards) {
  KgOptions gopt;
  gopt.num_persons = 60;
  gopt.num_cities = 6;
  gopt.num_countries = 5;
  gopt.num_orgs = 5;
  auto b = MakeKgBundle(gopt, InjectOptions{});
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  const Graph& g = b.value().graph;

  ShardedSnapshot ss(g, 4);
  size_t shard_sum = 0;
  for (size_t s = 0; s < ss.NumShards(); ++s)
    shard_sum += ss.shard(s).MemoryBytes();
  EXPECT_GT(ss.MemoryBytes(), shard_sum);  // + routing table and owners
}

// ------------------------------------------------------- detection streams

std::vector<Violation> Drain(ViolationStore* store) {
  std::vector<Violation> out;
  Violation v;
  while (store->PopBest(&v)) out.push_back(v);
  return out;
}

// DetectAll over a sharded store — as the view itself and through the
// caller-provided snapshot seam — must reproduce the sequential live-graph
// violation stream for every shard x thread combination.
void ExpectShardedDetectEquivalence(DatasetBundle bundle) {
  const Graph& g = bundle.graph;
  const RuleSet& rules = bundle.rules;

  ViolationStore baseline;
  size_t n_base = DetectAll(g, rules, &baseline, nullptr, 1);
  std::vector<Violation> expect = Drain(&baseline);

  for (size_t shards : {1u, 2u, 4u, 8u}) {
    ShardedSnapshot ss(g, shards);
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      ViolationStore as_view, as_param;
      size_t n_v = DetectAll(ss, rules, &as_view, nullptr, threads);
      size_t n_p = DetectAll(g, rules, &as_param, nullptr, threads, &ss);
      EXPECT_EQ(n_base, n_v) << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(n_base, n_p) << "shards=" << shards << " threads=" << threads;
      std::vector<Violation> a = Drain(&as_view), b = Drain(&as_param);
      ASSERT_EQ(expect.size(), a.size())
          << "shards=" << shards << " threads=" << threads;
      ASSERT_EQ(expect.size(), b.size());
      for (size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(expect[i].rule, a[i].rule) << "pop " << i;
        EXPECT_EQ(expect[i].alternatives, a[i].alternatives) << "pop " << i;
        EXPECT_DOUBLE_EQ(expect[i].best_cost, a[i].best_cost) << "pop " << i;
        EXPECT_EQ(expect[i].alternatives, b[i].alternatives) << "pop " << i;
      }
    }
    // Seed candidates come from the merged shard partitions.
    for (RuleId r = 0; r < rules.size(); ++r) {
      Matcher over_g(g, rules[r].pattern());
      Matcher over_s(ss, rules[r].pattern());
      VarId sv = over_g.SeedVar();
      ASSERT_EQ(sv, over_s.SeedVar()) << rules[r].name();
      if (sv == kNoVar) continue;
      EXPECT_EQ(over_g.SeedCandidates(sv), over_s.SeedCandidates(sv))
          << rules[r].name() << " shards=" << shards;
    }
  }
}

TEST(ShardedSnapshotTest, KgDetectEquivalenceAcrossShardsAndThreads) {
  KgOptions gopt;
  gopt.num_persons = 200;
  gopt.num_cities = 20;
  gopt.num_countries = 8;
  gopt.num_orgs = 15;
  InjectOptions iopt;
  iopt.rate = 0.08;
  auto b = MakeKgBundle(gopt, iopt);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ExpectShardedDetectEquivalence(std::move(b).value());
}

TEST(ShardedSnapshotTest, SocialDetectEquivalenceAcrossShardsAndThreads) {
  SocialOptions gopt;
  gopt.num_persons = 200;
  InjectOptions iopt;
  iopt.rate = 0.08;
  auto b = MakeSocialBundle(gopt, iopt);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ExpectShardedDetectEquivalence(std::move(b).value());
}

TEST(ShardedSnapshotTest, CitationDetectEquivalenceAcrossShardsAndThreads) {
  CitationOptions gopt;
  gopt.num_papers = 150;
  gopt.num_authors = 60;
  InjectOptions iopt;
  iopt.rate = 0.08;
  auto b = MakeCitationBundle(gopt, iopt);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ExpectShardedDetectEquivalence(std::move(b).value());
}

// ---------------------------------------------------------- serving layer

// The same edit stream committed through a sharded-store service and a
// monolithic-store twin produces identical graphs, fixes and backlogs —
// and only the sharded service moves the per-shard ledger.
TEST(ShardedSnapshotTest, ServiceCommitsBitIdenticalAcrossShardCounts) {
  KgOptions gopt;
  gopt.num_persons = 150;
  gopt.num_cities = 15;
  gopt.num_countries = 8;
  gopt.num_orgs = 12;
  InjectOptions iopt;
  iopt.rate = 0.05;
  auto b = MakeKgBundle(gopt, iopt);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  DatasetBundle bundle = std::move(b).value();
  {
    RepairEngine engine;
    auto res = engine.Run(&bundle.graph, bundle.rules);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
  }

  ServeOptions mono;
  mono.num_threads = 4;
  mono.shard_min_anchors = 2;  // fan out (and snapshot) nearly every batch
  mono.num_shards = 1;
  ServeOptions sharded = mono;
  sharded.num_shards = 4;
  RepairService a(bundle.graph.Clone(), bundle.rules, mono);
  RepairService c(bundle.graph.Clone(), bundle.rules, sharded);
  EXPECT_EQ(a.num_shards(), 1u);
  EXPECT_EQ(c.num_shards(), 4u);

  Graph scratch = bundle.graph.Clone();
  Rng rng(321);
  for (int batch = 0; batch < 6; ++batch) {
    size_t mark = scratch.JournalSize();
    std::vector<NodeId> nodes = scratch.Nodes();
    for (int i = 0; i < 8; ++i) {
      NodeId x = nodes[rng.PickIndex(nodes)];
      NodeId y = nodes[rng.PickIndex(nodes)];
      if (x != y && scratch.NodeAlive(x) && scratch.NodeAlive(y))
        scratch.AddEdge(x, y, scratch.vocab()->Label("knows"));
    }
    std::vector<EditEntry> ops(scratch.Journal().begin() + mark,
                               scratch.Journal().end());
    auto ra = a.ApplyBatch(ops);
    auto rc = c.ApplyBatch(ops);
    ASSERT_TRUE(ra.ok() && rc.ok());
    EXPECT_EQ(ra.value().fixes, rc.value().fixes) << "batch " << batch;
    EXPECT_EQ(ra.value().violations, rc.value().violations);
    EXPECT_EQ(ra.value().expansions, rc.value().expansions);
    EXPECT_EQ(ra.value().snapshot_reads, rc.value().snapshot_reads);
    EXPECT_TRUE(a.graph().ContentEquals(c.graph())) << "batch " << batch;
    scratch = a.graph().Clone();
  }

  const ServiceStats& sa = a.stats();
  const ServiceStats& sc = c.stats();
  EXPECT_EQ(sa.snapshot_batches, sc.snapshot_batches);
  EXPECT_EQ(sc.snapshot_patches + sc.snapshot_rebuilds, sc.snapshot_batches);
  ASSERT_GT(sc.snapshot_batches, 1u);
  // Only the sharded service keeps a per-shard ledger; the first
  // acquisition built all four shards.
  EXPECT_EQ(sa.shard_patches + sa.shard_rebuilds, 0u);
  EXPECT_GE(sc.shard_rebuilds, 4u);
  EXPECT_GT(sc.shard_patches + sc.shard_rebuilds, 4u);
  EXPECT_GT(sc.snapshot_memory_bytes, 0u);
}

// A hot shard (all edits within one shard's nodes) with a tiny rebuild
// fraction: steady-state commits rebuild ONE shard per acquisition, never
// the whole store.
TEST(ShardedSnapshotTest, ServiceRebuildsOnlyTheHotShard) {
  // A rule that can never match: anchors still fan the commit out, but no
  // repair cascade can leak edits into other shards.
  auto vocab = MakeVocabulary();
  Graph g(vocab);
  SymbolId person = vocab->Label("Person"), knows = vocab->Label("knows");
  for (int i = 0; i < 32; ++i) g.AddNode(person);
  for (NodeId n = 0; n + 1 < 32; ++n) (void)g.AddEdge(n, n + 1, knows);
  auto rules = ParseRules(
      "RULE never CLASS conflict\nMATCH (x:Ghost)\n"
      "ACTION UPD_NODE x LABEL Person\n",
      vocab);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();

  ServeOptions sopt;
  sopt.num_threads = 2;
  sopt.shard_min_anchors = 2;
  sopt.num_shards = 4;
  sopt.snapshot_rebuild_fraction = 0.0;  // every touched shard rebuilds
  RepairService service(std::move(g), std::move(rules).value(), sopt);

  // Violation-free attribute churn on shard-0 nodes only (ids congruent 0
  // mod 4): anchors fan the commit out, no rule fires, so the whole delta
  // — and therefore the dirt — stays in shard 0. (Structural edits would
  // cascade repairs like node merges across shards.)
  std::vector<NodeId> shard0;
  for (NodeId n : service.graph().Nodes())
    if (n % 4 == 0) shard0.push_back(n);
  ASSERT_GE(shard0.size(), 6u);
  SymbolId note = service.graph().vocab()->Attr("note");
  size_t batches = 0;
  for (int batch = 0; batch < 3; ++batch) {
    SymbolId value = service.graph().vocab()->Value(
        "v" + std::to_string(batch));  // varies: same-value sets are no-ops
    std::vector<EditEntry> ops;
    for (size_t i = 0; i < 6; ++i) {
      EditEntry op;
      op.kind = EditKind::kSetNodeAttr;
      op.node = shard0[i];
      op.attr = note;
      op.new_sym = value;
      ops.push_back(op);
    }
    auto r = service.ApplyBatch(ops);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r.value().fixes, 0u);
    if (r.value().snapshot_reads) ++batches;
  }
  ASSERT_GT(batches, 1u);
  const ServiceStats& s = service.stats();
  // First acquisition: full 4-shard build. Every later one: the hot shard
  // alone.
  EXPECT_EQ(s.shard_rebuilds, 4 + (batches - 1));
  EXPECT_EQ(s.shard_patches, 0u);
  EXPECT_EQ(s.snapshot_rebuilds, batches);
}

// -------------------------------------------------------------- validation

TEST(ServeOptionsValidateTest, RejectsOutOfRangeOptions) {
  ServeOptions ok;
  EXPECT_TRUE(ok.Validate().ok());
  ok.num_shards = ShardedSnapshot::kMaxShards;
  ok.snapshot_rebuild_fraction = 1.0;
  EXPECT_TRUE(ok.Validate().ok());

  ServeOptions bad_low = ok;
  bad_low.snapshot_rebuild_fraction = -0.01;
  EXPECT_FALSE(bad_low.Validate().ok());
  ServeOptions bad_high = ok;
  bad_high.snapshot_rebuild_fraction = 1.5;
  EXPECT_FALSE(bad_high.Validate().ok());
  ServeOptions bad_nan = ok;
  bad_nan.snapshot_rebuild_fraction =
      std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(bad_nan.Validate().ok());

  ServeOptions bad_shards = ok;
  bad_shards.num_shards = ShardedSnapshot::kMaxShards + 1;
  EXPECT_FALSE(bad_shards.Validate().ok());
  // A "-1" that survived an unsigned parse becomes an absurd count.
  ServeOptions bad_threads = ok;
  bad_threads.num_threads = static_cast<size_t>(-1);
  EXPECT_FALSE(bad_threads.Validate().ok());
}

TEST(ServeOptionsValidateTest, ServiceConstructorEnforcesValidation) {
  auto vocab = MakeVocabulary();
  Graph g(vocab);
  g.AddNode(vocab->Label("A"));
  RuleSet rules;

  ServeOptions bad;
  bad.snapshot_rebuild_fraction = 2.0;
  EXPECT_THROW(RepairService(g.Clone(), rules, bad), std::invalid_argument);
  bad = ServeOptions{};
  bad.num_shards = ShardedSnapshot::kMaxShards * 2;
  EXPECT_THROW(RepairService(g.Clone(), rules, bad), std::invalid_argument);
  // Valid options construct fine (and resolve the shard default).
  ServeOptions fine;
  fine.num_threads = 2;
  RepairService service(g.Clone(), rules, fine);
  EXPECT_EQ(service.num_shards(), 2u);
}

}  // namespace
}  // namespace grepair
