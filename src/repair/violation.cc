#include "repair/violation.h"

#include <algorithm>

#include "util/hash.h"

namespace grepair {

uint64_t ViolationKey(RuleId rule, const Match& m) {
  std::vector<NodeId> nodes = m.nodes;
  std::vector<EdgeId> edges = m.edges;
  std::sort(nodes.begin(), nodes.end());
  std::sort(edges.begin(), edges.end());
  uint64_t h = Mix64(0xF1E2D3C4B5A69788ULL + rule);
  for (NodeId n : nodes) h = HashCombine(h, n);
  for (EdgeId e : edges) h = HashCombine(h, 0x4000000000ULL + e);
  return h;
}

bool ViolationStore::Add(RuleId rule, const Match& m, double cost) {
  uint64_t key = ViolationKey(rule, m);
  auto it = live_.find(key);
  if (it != live_.end()) {
    // Fold as an alternative (skip exact duplicates).
    for (const auto& alt : it->second.alternatives)
      if (alt == m) return false;
    it->second.alternatives.push_back(m);
    if (cost < it->second.best_cost) {
      it->second.best_cost = cost;
      heap_.push({cost, key});  // decrease-key via lazy duplicate
    }
    return false;
  }
  Violation v;
  v.rule = rule;
  v.alternatives.push_back(m);
  v.best_cost = cost;
  live_.emplace(key, std::move(v));
  heap_.push({cost, key});
  return true;
}

bool ViolationStore::PopBest(Violation* out) {
  while (!heap_.empty()) {
    HeapItem item = heap_.top();
    heap_.pop();
    auto it = live_.find(item.key);
    if (it == live_.end()) continue;           // already consumed
    if (item.cost > it->second.best_cost) continue;  // stale duplicate
    *out = std::move(it->second);
    live_.erase(it);
    return true;
  }
  return false;
}

void ViolationStore::Clear() {
  live_.clear();
  heap_ = {};
}

std::vector<Violation> ViolationStore::Snapshot() const {
  std::vector<Violation> out;
  out.reserve(live_.size());
  for (const auto& [key, v] : live_) out.push_back(v);
  return out;
}

}  // namespace grepair
