// The one k-way ordered-merge primitive behind every "disjoint ascending
// partitions back into one global order" path: the sharded store's
// candidate/enumeration merges (sharded_snapshot.cc) and the
// storage-aligned detector merges (parallel_detector.cc,
// delta_detector.cc) all reduce to it, so the min-pick invariant lives in
// exactly one place.
#ifndef GREPAIR_UTIL_ORDERED_MERGE_H_
#define GREPAIR_UTIL_ORDERED_MERGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace grepair {

/// K-way min-pick merge over `num_tasks` streams of DISJOINT ascending
/// uint32 keys (a partition of one globally ascending key list):
/// repeatedly finds the stream whose next key is smallest and calls
/// flush(task, index) for it, visiting every (task, index) pair in global
/// key order. O(total * K) with the small K of shard fan-outs.
///   size(t)   -> number of keys in stream t
///   key(t, i) -> stream t's i-th key (ascending in i)
///   flush(t, i) -> consume stream t's i-th key (emit its payload)
template <typename SizeFn, typename KeyFn, typename FlushFn>
void MergeByAscendingKey(size_t num_tasks, const SizeFn& size,
                         const KeyFn& key, const FlushFn& flush) {
  std::vector<size_t> cur(num_tasks, 0);
  for (;;) {
    size_t best = num_tasks;
    uint32_t best_key = 0;
    for (size_t t = 0; t < num_tasks; ++t) {
      if (cur[t] >= size(t)) continue;
      uint32_t k = key(t, cur[t]);
      if (best == num_tasks || k < best_key) {
        best = t;
        best_key = k;
      }
    }
    if (best == num_tasks) return;
    flush(best, cur[best]);
    ++cur[best];
  }
}

}  // namespace grepair

#endif  // GREPAIR_UTIL_ORDERED_MERGE_H_
