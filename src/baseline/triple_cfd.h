// Relational-style cleaning baseline: the graph is flattened to triples and
// repaired with CFD-like constraints (functional dependencies per edge label
// and key-based deduplication). This mimics what a relational cleaning tool
// can express over a graph export: it handles functional conflicts, deletes
// (rather than merges) duplicates, and cannot express structural
// incompleteness at all — exactly the gap the paper's GRRs close.
#ifndef GREPAIR_BASELINE_TRIPLE_CFD_H_
#define GREPAIR_BASELINE_TRIPLE_CFD_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "repair/engine.h"

namespace grepair {

struct TripleCfdOptions {
  /// Edge labels where a source node may keep at most ONE outgoing edge
  /// (FD: src -> dst). Extra edges are deleted, keeping the highest
  /// confidence.
  std::vector<std::string> functional_edges;
  /// Edge labels where a target node may keep at most one incoming edge
  /// (FD: dst -> src).
  std::vector<std::string> inverse_functional_edges;
  /// (node label, attribute) keys: nodes of the label agreeing on the
  /// attribute are duplicates; the relational fix DELETES the later row
  /// (higher id) — losing its edges, unlike a graph-aware MERGE.
  std::vector<std::pair<std::string, std::string>> dedup_keys;
  std::string confidence_attr = "conf";
};

/// Repairs `g` in place under the relational model. Applied fixes are
/// reported with rule id kBaselineRuleId for the evaluation.
Result<RepairResult> TripleCfdRepair(Graph* g, const TripleCfdOptions& opt);

inline constexpr RuleId kBaselineRuleId = 0xFFFFFFF0u;

/// The CFD configuration that best covers each shipped dataset's schema
/// (what a diligent practitioner would configure for that export).
TripleCfdOptions KgCfdConfig();
TripleCfdOptions SocialCfdConfig();
TripleCfdOptions CitationCfdConfig();

}  // namespace grepair

#endif  // GREPAIR_BASELINE_TRIPLE_CFD_H_
