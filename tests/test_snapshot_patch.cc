// Patched-snapshot equivalence suite: a GraphSnapshot advanced by
// Graph delta-log records (GraphSnapshot::Patch) must be bit-identical to
// BOTH a fresh snapshot of the current graph and the live Graph itself —
// accessors, tombstone reuse, undo-revived adjacency-tail order, seed
// candidates, and whole DetectAll violation streams across thread counts
// {1,2,4,8} on all three generator domains. Also covers the serving
// integration: an incremental-snapshot RepairService commits bit-identically
// to a rebuild-every-batch service while ServiceStats tells the two
// acquisition paths apart.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "eval/experiment.h"
#include "graph/graph.h"
#include "graph/snapshot.h"
#include "match/matcher.h"
#include "repair/engine.h"
#include "serve/repair_service.h"
#include "snapshot_equivalence.h"
#include "stress_driver.h"

namespace grepair {
namespace {

// Patches `snap` with everything the graph journaled since `watermark`,
// returning the new watermark.
uint64_t PatchTo(const Graph& g, GraphSnapshot* snap, uint64_t watermark) {
  auto [records, count] = g.DeltaLogSince(watermark);
  snap->Patch(records, count);
  return g.DeltaLogEnd();
}

// The full tri-way check: patched snapshot == live graph == fresh snapshot.
void ExpectPatchedEquivalent(const Graph& g, const GraphSnapshot& patched) {
  ExpectViewEquivalent(g, patched);
  GraphSnapshot fresh(g);
  EXPECT_EQ(fresh.Nodes(), patched.Nodes());
  EXPECT_EQ(fresh.Edges(), patched.Edges());
  EXPECT_EQ(fresh.NumNodes(), patched.NumNodes());
  EXPECT_EQ(fresh.NumEdges(), patched.NumEdges());
}

class SnapshotPatchStress : public ::testing::TestWithParam<uint64_t> {};

// Random scripts: snapshot mid-history, keep mutating (with undo rounds
// interleaved, exercising tombstone revival and adjacency-tail order), and
// patch in slices. The patched snapshot must track the live graph exactly
// at every verification point.
TEST_P(SnapshotPatchStress, RandomScriptsPatchToLiveState) {
  StressDriver d(GetParam());
  d.g.EnableDeltaLog();
  for (int i = 0; i < 30; ++i) d.Step();

  GraphSnapshot snap(d.g);
  uint64_t watermark = d.g.DeltaLogEnd();
  for (int round = 0; round < 6; ++round) {
    size_t mark = d.g.JournalSize();
    for (int i = 0; i < 15; ++i) d.Step();
    // Half the rounds undo a suffix: the delta log records the inverse
    // operations (revivals land at adjacency tails).
    if (d.rng.NextBernoulli(0.5)) {
      size_t back = mark + d.rng.NextBounded(d.g.JournalSize() - mark + 1);
      ASSERT_TRUE(d.g.UndoTo(back).ok());
    }
    watermark = PatchTo(d.g, &snap, watermark);
    ASSERT_NO_FATAL_FAILURE(ExpectPatchedEquivalent(d.g, snap))
        << "seed " << GetParam() << " round " << round;
  }
  EXPECT_GT(snap.PatchedEdits(), 0u);
  EXPECT_GT(snap.MemoryBytes(), 0u);
  d.VerifyIndexes();
}

// One big slice covering adds, removals, relabels, attribute churn and a
// full undo back to the snapshot point (the delta log then describes a
// round trip whose net content change is nil — but whose adjacency order
// need not be: revived edges sit at the tail).
TEST_P(SnapshotPatchStress, UndoRoundTripPatchesToSameContent) {
  StressDriver d(GetParam() + 31337);
  d.g.EnableDeltaLog();
  for (int i = 0; i < 25; ++i) d.Step();

  GraphSnapshot snap(d.g);
  uint64_t watermark = d.g.DeltaLogEnd();
  uint64_t fp = d.g.Fingerprint();
  size_t mark = d.g.JournalSize();
  for (int i = 0; i < 20; ++i) d.Step();
  ASSERT_TRUE(d.g.UndoTo(mark).ok());
  EXPECT_EQ(d.g.Fingerprint(), fp);

  PatchTo(d.g, &snap, watermark);
  ExpectPatchedEquivalent(d.g, snap);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotPatchStress,
                         ::testing::Range<uint64_t>(0, 20));

// The PR3 revived-order scenario, now THROUGH a patch: the snapshot is
// taken before the remove+undo, and the patch must reproduce the tail
// position of the revived edge — which the journal stack alone cannot
// express (the pop erased the RemoveEdge entry), only the delta log can.
TEST(SnapshotPatchTest, RevivedEdgePatchesToAdjacencyTail) {
  auto vocab = MakeVocabulary();
  Graph g(vocab);
  g.EnableDeltaLog();
  SymbolId person = vocab->Label("Person"), knows = vocab->Label("knows");
  NodeId a = g.AddNode(person), b = g.AddNode(person), c = g.AddNode(person);
  EdgeId e0 = g.AddEdge(a, b, knows).value();
  EdgeId e1 = g.AddEdge(a, c, knows).value();
  EdgeId e2 = g.AddEdge(a, b, knows).value();  // parallel to e0

  GraphSnapshot snap(g);
  uint64_t watermark = g.DeltaLogEnd();
  ASSERT_EQ(ToVector(snap.OutEdges(a)), (std::vector<EdgeId>{e0, e1, e2}));

  size_t mark = g.JournalSize();
  ASSERT_TRUE(g.RemoveEdge(e0).ok());
  ASSERT_TRUE(g.UndoTo(mark).ok());  // e0 revived at the tail: e1, e2, e0
  PatchTo(g, &snap, watermark);

  std::vector<EdgeId> expected = {e1, e2, e0};
  ASSERT_EQ(ToVector(g.OutEdges(a)), expected);
  EXPECT_EQ(ToVector(snap.OutEdges(a)), expected);
  ExpectPatchedEquivalent(g, snap);

  // Match enumeration over the parallel edges follows the revived order on
  // both backends.
  Pattern p;
  VarId x = p.AddNode(person), y = p.AddNode(person);
  ASSERT_TRUE(p.AddEdge(x, y, knows).ok());
  EXPECT_EQ(Matcher(g, p).Collect(), Matcher(snap, p).Collect());
}

// Regression: relabeling one edge must not desort the base edge index for
// its (src, dst) siblings. e1=(s,d,L1) and e2=(s,d,L3) share a base-index
// run sorted by label; patching SetEdgeLabel(e1, L5) in place would re-key
// e1 under L5 and make the binary search for (s,d,L3) land on it and bail —
// HasEdge(s,d,L3) false while the live graph says true. The patch freezes
// the base sort key instead (BaseSearchLabel).
TEST(SnapshotPatchTest, RelabelKeepsSiblingEdgesSearchable) {
  auto vocab = MakeVocabulary();
  Graph g(vocab);
  g.EnableDeltaLog();
  SymbolId node = vocab->Label("N");
  SymbolId l1 = vocab->Label("L1"), l3 = vocab->Label("L3"),
           l5 = vocab->Label("L5");
  NodeId s = g.AddNode(node), d = g.AddNode(node);
  EdgeId e1 = g.AddEdge(s, d, l1).value();
  EdgeId e2 = g.AddEdge(s, d, l3).value();
  (void)e2;

  GraphSnapshot snap(g);
  uint64_t watermark = g.DeltaLogEnd();
  ASSERT_TRUE(g.SetEdgeLabel(e1, l5).ok());
  PatchTo(g, &snap, watermark);

  EXPECT_TRUE(snap.HasEdge(s, d, l3));
  EXPECT_TRUE(snap.HasEdge(s, d, l5));
  EXPECT_FALSE(snap.HasEdge(s, d, l1));
  ExpectPatchedEquivalent(g, snap);
}

// Tombstone reuse: removing an attributed node keeps its label/attrs
// addressable through the patched snapshot; undoing the removal revives
// the SAME id (with its attributes and re-linked edges) and the patch
// mirrors the revival.
TEST(SnapshotPatchTest, TombstoneRemovalAndRevivalRoundTrip) {
  auto vocab = MakeVocabulary();
  Graph g(vocab);
  g.EnableDeltaLog();
  SymbolId person = vocab->Label("Person"), knows = vocab->Label("knows");
  SymbolId name = vocab->Attr("name"), alice = vocab->Value("alice");
  NodeId a = g.AddNode(person), b = g.AddNode(person);
  ASSERT_TRUE(g.SetNodeAttr(a, name, alice).ok());
  EdgeId e = g.AddEdge(a, b, knows).value();
  ASSERT_TRUE(g.SetEdgeAttr(e, name, alice).ok());

  GraphSnapshot snap(g);
  uint64_t watermark = g.DeltaLogEnd();

  size_t mark = g.JournalSize();
  ASSERT_TRUE(g.RemoveNode(a).ok());  // cascades e, tombstones both
  watermark = PatchTo(g, &snap, watermark);
  ExpectPatchedEquivalent(g, snap);
  EXPECT_FALSE(snap.NodeAlive(a));
  EXPECT_FALSE(snap.EdgeAlive(e));
  EXPECT_EQ(snap.NodeLabel(a), person);          // tombstone stays readable
  EXPECT_EQ(snap.NodeAttr(a, name), alice);
  EXPECT_EQ(snap.EdgeAttr(e, name), alice);

  ASSERT_TRUE(g.UndoTo(mark).ok());  // revive a and e under the same ids
  PatchTo(g, &snap, watermark);
  ExpectPatchedEquivalent(g, snap);
  EXPECT_TRUE(snap.NodeAlive(a));
  EXPECT_TRUE(snap.EdgeAlive(e));
  EXPECT_EQ(snap.NodeAttr(a, name), alice);
  EXPECT_TRUE(snap.HasEdge(a, b, knows));
}

// -------------------------------------------------------- detection streams

std::vector<Violation> Drain(ViolationStore* store) {
  std::vector<Violation> out;
  Violation v;
  while (store->PopBest(&v)) out.push_back(v);
  return out;
}

// Mutates the bundle graph with a mixed batch, patches a pre-batch
// snapshot, and requires identical DetectAll violation streams between the
// live graph and the patched snapshot for every thread count — both by
// passing the snapshot as the view and through DetectAll's caller-provided
// `snapshot` parameter (the reuse seam eval loops use).
void ExpectPatchedDetectEquivalence(DatasetBundle bundle) {
  Graph g = bundle.graph.Clone();
  g.EnableDeltaLog();
  const RuleSet& rules = bundle.rules;

  GraphSnapshot snap(g);
  uint64_t watermark = g.DeltaLogEnd();

  // A batch touching every structure: new nodes/edges, removals, label and
  // attribute churn, plus an undo slice.
  std::vector<NodeId> nodes = g.Nodes();
  std::vector<EdgeId> edges = g.Edges();
  SymbolId label0 = g.NodeLabel(nodes[0]);
  NodeId nu = g.AddNode(label0);
  ASSERT_TRUE(g.AddEdge(nodes[1], nu, g.EdgeLabel(edges[0])).ok());
  ASSERT_TRUE(g.RemoveEdge(edges[edges.size() / 2]).ok());
  ASSERT_TRUE(g.SetNodeLabel(nodes[2], label0).ok() || true);
  size_t mark = g.JournalSize();
  ASSERT_TRUE(g.RemoveNode(nodes[3]).ok());
  ASSERT_TRUE(g.UndoTo(mark).ok());  // revive: tail-order edges
  PatchTo(g, &snap, watermark);
  ASSERT_NO_FATAL_FAILURE(ExpectPatchedEquivalent(g, snap));

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ViolationStore via_graph, via_patched, via_param;
    size_t n_g = DetectAll(g, rules, &via_graph, nullptr, threads);
    size_t n_s = DetectAll(snap, rules, &via_patched, nullptr, threads);
    size_t n_p = DetectAll(g, rules, &via_param, nullptr, threads, &snap);
    EXPECT_EQ(n_g, n_s) << "threads=" << threads;
    EXPECT_EQ(n_g, n_p) << "threads=" << threads;
    std::vector<Violation> a = Drain(&via_graph), b = Drain(&via_patched),
                           c = Drain(&via_param);
    ASSERT_EQ(a.size(), b.size()) << "threads=" << threads;
    ASSERT_EQ(a.size(), c.size()) << "threads=" << threads;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].rule, b[i].rule) << "pop " << i;
      EXPECT_EQ(a[i].alternatives, b[i].alternatives) << "pop " << i;
      EXPECT_DOUBLE_EQ(a[i].best_cost, b[i].best_cost) << "pop " << i;
      EXPECT_EQ(a[i].alternatives, c[i].alternatives) << "pop " << i;
    }
  }

  // Sequential expansion statistics agree exactly as well: identical
  // search trees, not just identical results.
  ViolationStore sg, ss;
  size_t exp_g = 0, exp_s = 0;
  DetectAll(g, rules, &sg, &exp_g, 1);
  DetectAll(snap, rules, &ss, &exp_s, 1);
  EXPECT_EQ(exp_g, exp_s);

  // Seed candidates come from the patched partitions.
  for (RuleId r = 0; r < rules.size(); ++r) {
    Matcher over_g(g, rules[r].pattern());
    Matcher over_s(snap, rules[r].pattern());
    VarId sv = over_g.SeedVar();
    ASSERT_EQ(sv, over_s.SeedVar()) << rules[r].name();
    if (sv == kNoVar) continue;
    EXPECT_EQ(over_g.SeedCandidates(sv), over_s.SeedCandidates(sv))
        << rules[r].name();
  }
}

TEST(SnapshotPatchTest, KgDetectEquivalenceAcrossThreads) {
  KgOptions gopt;
  gopt.num_persons = 300;
  gopt.num_cities = 30;
  gopt.num_countries = 10;
  gopt.num_orgs = 20;
  InjectOptions iopt;
  iopt.rate = 0.08;
  auto b = MakeKgBundle(gopt, iopt);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ExpectPatchedDetectEquivalence(std::move(b).value());
}

TEST(SnapshotPatchTest, SocialDetectEquivalenceAcrossThreads) {
  SocialOptions gopt;
  gopt.num_persons = 300;
  InjectOptions iopt;
  iopt.rate = 0.08;
  auto b = MakeSocialBundle(gopt, iopt);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ExpectPatchedDetectEquivalence(std::move(b).value());
}

TEST(SnapshotPatchTest, CitationDetectEquivalenceAcrossThreads) {
  CitationOptions gopt;
  gopt.num_papers = 200;
  gopt.num_authors = 80;
  InjectOptions iopt;
  iopt.rate = 0.08;
  auto b = MakeCitationBundle(gopt, iopt);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ExpectPatchedDetectEquivalence(std::move(b).value());
}

// ---------------------------------------------------------- serving layer

// The same edit stream committed through an incremental-snapshot service
// and a rebuild-every-batch service produces identical graphs, fixes and
// backlogs — and the incremental service's stats show patches carrying the
// steady state (one initial rebuild, patches after).
TEST(SnapshotPatchTest, ServiceCommitsBitIdenticalAndCountsPaths) {
  KgOptions gopt;
  gopt.num_persons = 200;
  gopt.num_cities = 20;
  gopt.num_countries = 8;
  gopt.num_orgs = 15;
  InjectOptions iopt;
  iopt.rate = 0.05;
  auto b = MakeKgBundle(gopt, iopt);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  DatasetBundle bundle = std::move(b).value();
  {
    RepairEngine engine;
    auto res = engine.Run(&bundle.graph, bundle.rules);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
  }

  ServeOptions incr;
  incr.num_threads = 4;
  incr.shard_min_anchors = 2;  // fan out (and snapshot) nearly every batch
  ServeOptions full = incr;
  full.incremental_snapshots = false;
  RepairService a(bundle.graph.Clone(), bundle.rules, incr);
  RepairService c(bundle.graph.Clone(), bundle.rules, full);

  Graph scratch = bundle.graph.Clone();
  Rng rng(99);
  for (int batch = 0; batch < 6; ++batch) {
    size_t mark = scratch.JournalSize();
    std::vector<NodeId> nodes = scratch.Nodes();
    for (int i = 0; i < 8; ++i) {
      NodeId x = nodes[rng.PickIndex(nodes)];
      NodeId y = nodes[rng.PickIndex(nodes)];
      if (x != y && scratch.NodeAlive(x) && scratch.NodeAlive(y))
        scratch.AddEdge(x, y, scratch.vocab()->Label("knows"));
    }
    std::vector<EditEntry> ops(scratch.Journal().begin() + mark,
                               scratch.Journal().end());
    auto ra = a.ApplyBatch(ops);
    auto rc = c.ApplyBatch(ops);
    ASSERT_TRUE(ra.ok() && rc.ok());
    EXPECT_EQ(ra.value().fixes, rc.value().fixes) << "batch " << batch;
    EXPECT_EQ(ra.value().violations, rc.value().violations);
    EXPECT_EQ(ra.value().snapshot_reads, rc.value().snapshot_reads);
    EXPECT_TRUE(a.graph().ContentEquals(c.graph())) << "batch " << batch;
    scratch = a.graph().Clone();
  }

  const ServiceStats& sa = a.stats();
  const ServiceStats& sc = c.stats();
  EXPECT_EQ(sa.snapshot_batches, sc.snapshot_batches);
  EXPECT_EQ(sa.snapshot_patches + sa.snapshot_rebuilds, sa.snapshot_batches);
  EXPECT_EQ(sc.snapshot_patches, 0u);  // disabled → rebuild every time
  EXPECT_EQ(sc.snapshot_rebuilds, sc.snapshot_batches);
  ASSERT_GT(sa.snapshot_batches, 1u);
  EXPECT_GE(sa.snapshot_patches, 1u);  // steady state patches
  EXPECT_GE(sa.snapshot_rebuilds, 1u);  // the first acquisition builds
  EXPECT_GT(sa.snapshot_memory_bytes, 0u);
}

// A tiny rebuild threshold forces the fraction gate: every acquisition
// rebuilds, so the patch counter stays at zero but results are unchanged.
TEST(SnapshotPatchTest, RebuildThresholdForcesRebuilds) {
  KgOptions gopt;
  gopt.num_persons = 120;
  gopt.num_cities = 12;
  gopt.num_countries = 6;
  gopt.num_orgs = 10;
  InjectOptions iopt;
  iopt.rate = 0.0;
  auto b = MakeKgBundle(gopt, iopt);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  DatasetBundle bundle = std::move(b).value();

  ServeOptions sopt;
  sopt.num_threads = 2;
  sopt.shard_min_anchors = 2;
  sopt.snapshot_rebuild_fraction = 0.0;  // nothing is ever patchable
  RepairService service(bundle.graph.Clone(), bundle.rules, sopt);
  std::vector<NodeId> nodes = service.graph().Nodes();
  for (int batch = 0; batch < 3; ++batch) {
    std::vector<EditEntry> ops;
    for (int i = 0; i < 6; ++i) {
      EditEntry op;
      op.kind = EditKind::kAddEdge;
      op.src = nodes[(batch * 6 + i) % nodes.size()];
      op.dst = nodes[(batch * 6 + i + 7) % nodes.size()];
      op.label = service.graph().vocab()->Label("knows");
      if (op.src == op.dst) continue;
      ops.push_back(op);
    }
    ASSERT_TRUE(service.ApplyBatch(ops).ok());
  }
  EXPECT_EQ(service.stats().snapshot_patches, 0u);
  EXPECT_EQ(service.stats().snapshot_rebuilds,
            service.stats().snapshot_batches);
}

}  // namespace
}  // namespace grepair
