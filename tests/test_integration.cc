// End-to-end integration: full generate -> inject -> repair -> evaluate
// pipelines on all three domains, all engine strategies, and the exact
// strategy validated against exact GED on small instances (invariant 7).
#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "ged/ged.h"
#include "grr/rule_parser.h"
#include "grr/standard_rules.h"
#include "util/rng.h"

namespace grepair {
namespace {

TEST(IntegrationTest, KgPipelineAllMethods) {
  KgOptions gopt;
  gopt.num_persons = 300;
  gopt.num_cities = 40;
  gopt.num_countries = 10;
  gopt.num_orgs = 25;
  InjectOptions iopt;
  iopt.rate = 0.06;
  auto bundle = MakeKgBundle(gopt, iopt);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  ASSERT_GT(bundle.value().truth.errors.size(), 10u);

  for (const std::string& method : StandardMethods()) {
    auto out = RunMethod(bundle.value(), method);
    ASSERT_TRUE(out.ok()) << method << ": " << out.status().ToString();
    if (method == "greedy" || method == "batch" || method == "naive") {
      EXPECT_EQ(out.value().repair.remaining_violations, 0u) << method;
      EXPECT_GT(out.value().quality.recall, 0.7) << method;
    }
  }
}

TEST(IntegrationTest, SocialPipeline) {
  SocialOptions gopt;
  gopt.num_persons = 600;
  InjectOptions iopt;
  iopt.rate = 0.06;
  auto bundle = MakeSocialBundle(gopt, iopt);
  ASSERT_TRUE(bundle.ok());
  auto out = RunMethod(bundle.value(), "greedy");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().repair.remaining_violations, 0u);
  EXPECT_GT(out.value().quality.f1, 0.8);
}

TEST(IntegrationTest, CitationPipeline) {
  CitationOptions gopt;
  gopt.num_papers = 400;
  gopt.num_authors = 120;
  InjectOptions iopt;
  iopt.rate = 0.06;
  auto bundle = MakeCitationBundle(gopt, iopt);
  ASSERT_TRUE(bundle.ok());
  auto out = RunMethod(bundle.value(), "greedy");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().repair.remaining_violations, 0u);
  EXPECT_GT(out.value().quality.f1, 0.75);
}

TEST(IntegrationTest, BatchBeatsNaiveOnDetectionWork) {
  KgOptions gopt;
  gopt.num_persons = 400;
  gopt.num_cities = 50;
  gopt.num_countries = 10;
  InjectOptions iopt;
  iopt.rate = 0.08;
  auto bundle = MakeKgBundle(gopt, iopt);
  ASSERT_TRUE(bundle.ok());

  auto batch = RunMethod(bundle.value(), "batch");
  auto naive = RunMethod(bundle.value(), "naive");
  ASSERT_TRUE(batch.ok() && naive.ok());
  // The incremental batch engine does far less matcher work than the
  // full-re-detection naive engine.
  EXPECT_LT(batch.value().repair.matcher_expansions,
            naive.value().repair.matcher_expansions);
  // And far fewer rounds than it applied fixes (batching is real).
  EXPECT_LT(batch.value().repair.rounds, batch.value().repair.applied.size());
}

TEST(IntegrationTest, ExactMatchesGedOnSmallInstance) {
  // Small corrupted instance: the exact engine's repair cost must equal the
  // exact graph edit distance between corrupted and repaired graphs when
  // all fix costs are uniform (confidence weighting off).
  auto vocab = MakeVocabulary();
  auto rules = ParseRules(R"(
    RULE sym CLASS incomplete
    MATCH (x:P)-[knows]->(y:P)
    WHERE NOT EDGE (y)-[knows]->(x)
    ACTION ADD_EDGE (y)-[knows]->(x)

    RULE no_self CLASS conflict
    MATCH (x:P)-[e:knows]->(x)
    ACTION DEL_EDGE e
  )",
                          vocab);
  ASSERT_TRUE(rules.ok());
  SymbolId p = vocab->Label("P"), knows = vocab->Label("knows");
  Graph g(vocab);
  NodeId a = g.AddNode(p), b = g.AddNode(p), c = g.AddNode(p);
  g.AddEdge(a, b, knows);   // asymmetric -> needs 1 add
  g.AddEdge(c, c, knows);   // self loop -> needs 1 delete
  g.ResetJournal();
  Graph before = g.Clone();

  RepairOptions opt;
  opt.strategy = RepairStrategy::kExact;
  opt.confidence_attr.clear();
  RepairEngine engine(opt);
  auto res = engine.Run(&g, rules.value());
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res.value().remaining_violations, 0u);

  GedOptions gopt;
  GedResult ged = ExactGed(before, g, gopt);
  ASSERT_TRUE(ged.optimal);
  EXPECT_DOUBLE_EQ(res.value().repair_cost, 2.0);
  EXPECT_DOUBLE_EQ(ged.distance, res.value().repair_cost);
}

TEST(IntegrationTest, HeuristicCostNeverBelowExact) {
  // Across several tiny corrupted instances: exact <= greedy <= naive is
  // not guaranteed pointwise for naive, but exact <= each heuristic is.
  auto vocab = MakeVocabulary();
  auto rules = ParseRules(R"(
    RULE sym CLASS incomplete
    MATCH (x:P)-[knows]->(y:P)
    WHERE NOT EDGE (y)-[knows]->(x)
    ACTION ADD_EDGE (y)-[knows]->(x)
  )",
                          vocab);
  ASSERT_TRUE(rules.ok());
  SymbolId p = vocab->Label("P"), knows = vocab->Label("knows");
  for (uint64_t seed = 0; seed < 4; ++seed) {
    Graph base(vocab);
    std::vector<NodeId> nodes;
    for (int i = 0; i < 5; ++i) nodes.push_back(base.AddNode(p));
    Rng rng(seed);
    for (int i = 0; i < 5; ++i) {
      NodeId x = nodes[rng.PickIndex(nodes)], y = nodes[rng.PickIndex(nodes)];
      if (x != y && !base.HasEdge(x, y, knows)) base.AddEdge(x, y, knows);
    }
    base.ResetJournal();

    double costs[2];
    int i = 0;
    for (auto strategy : {RepairStrategy::kExact, RepairStrategy::kGreedy}) {
      Graph work = base.Clone();
      RepairOptions opt;
      opt.strategy = strategy;
      RepairEngine engine(opt);
      auto res = engine.Run(&work, rules.value());
      ASSERT_TRUE(res.ok());
      EXPECT_EQ(res.value().remaining_violations, 0u);
      costs[i++] = res.value().repair_cost;
    }
    EXPECT_LE(costs[0], costs[1] + 1e-9) << "seed " << seed;
  }
}

TEST(IntegrationTest, RepairedKgStaysCleanUnderReRepair) {
  KgOptions gopt;
  gopt.num_persons = 200;
  InjectOptions iopt;
  iopt.rate = 0.05;
  auto bundle = MakeKgBundle(gopt, iopt);
  ASSERT_TRUE(bundle.ok());
  Graph work = bundle.value().graph.Clone();
  RepairEngine engine;
  ASSERT_TRUE(engine.Run(&work, bundle.value().rules).ok());
  uint64_t fp = work.Fingerprint();
  // Running repair again must be a no-op.
  auto res2 = engine.Run(&work, bundle.value().rules);
  ASSERT_TRUE(res2.ok());
  EXPECT_TRUE(res2.value().applied.empty());
  EXPECT_EQ(work.Fingerprint(), fp);
}

}  // namespace
}  // namespace grepair
