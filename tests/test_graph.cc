// Unit tests for the property-graph store: mutations, indexes, journal/undo,
// merge semantics, fingerprints.
#include <gtest/gtest.h>

#include "graph/graph.h"

namespace grepair {
namespace {

class GraphTest : public ::testing::Test {
 protected:
  GraphTest() : vocab_(MakeVocabulary()), g_(vocab_) {
    person_ = vocab_->Label("Person");
    city_ = vocab_->Label("City");
    knows_ = vocab_->Label("knows");
    born_ = vocab_->Label("born_in");
    name_ = vocab_->Attr("name");
    alice_ = vocab_->Value("alice");
    bob_ = vocab_->Value("bob");
  }

  VocabularyPtr vocab_;
  Graph g_;
  SymbolId person_, city_, knows_, born_, name_, alice_, bob_;
};

TEST_F(GraphTest, StartsEmpty) {
  EXPECT_EQ(g_.NumNodes(), 0u);
  EXPECT_EQ(g_.NumEdges(), 0u);
  EXPECT_EQ(g_.JournalSize(), 0u);
}

TEST_F(GraphTest, AddNodeAssignsDenseIds) {
  NodeId a = g_.AddNode(person_);
  NodeId b = g_.AddNode(city_);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(g_.NumNodes(), 2u);
  EXPECT_TRUE(g_.NodeAlive(a));
  EXPECT_EQ(g_.NodeLabel(a), person_);
}

TEST_F(GraphTest, AddEdgeLinksAdjacency) {
  NodeId a = g_.AddNode(person_), b = g_.AddNode(person_);
  auto e = g_.AddEdge(a, b, knows_);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(g_.NumEdges(), 1u);
  EXPECT_EQ(g_.OutDegree(a), 1u);
  EXPECT_EQ(g_.InDegree(b), 1u);
  EXPECT_TRUE(g_.HasEdge(a, b, knows_));
  EXPECT_FALSE(g_.HasEdge(b, a, knows_));
  EXPECT_TRUE(g_.HasEdge(a, b, 0));  // wildcard label
}

TEST_F(GraphTest, AddEdgeToDeadNodeFails) {
  NodeId a = g_.AddNode(person_);
  NodeId b = g_.AddNode(person_);
  ASSERT_TRUE(g_.RemoveNode(b).ok());
  auto e = g_.AddEdge(a, b, knows_);
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
}

TEST_F(GraphTest, ParallelEdgesAllowed) {
  NodeId a = g_.AddNode(person_), b = g_.AddNode(person_);
  ASSERT_TRUE(g_.AddEdge(a, b, knows_).ok());
  ASSERT_TRUE(g_.AddEdge(a, b, knows_).ok());
  EXPECT_EQ(g_.NumEdges(), 2u);
  EXPECT_EQ(g_.OutDegree(a), 2u);
}

TEST_F(GraphTest, RemoveEdge) {
  NodeId a = g_.AddNode(person_), b = g_.AddNode(person_);
  EdgeId e = g_.AddEdge(a, b, knows_).value();
  ASSERT_TRUE(g_.RemoveEdge(e).ok());
  EXPECT_FALSE(g_.EdgeAlive(e));
  EXPECT_EQ(g_.NumEdges(), 0u);
  EXPECT_EQ(g_.OutDegree(a), 0u);
  EXPECT_FALSE(g_.HasEdge(a, b, knows_));
  EXPECT_FALSE(g_.RemoveEdge(e).ok());  // double remove fails
}

TEST_F(GraphTest, RemoveNodeCascadesEdges) {
  NodeId a = g_.AddNode(person_), b = g_.AddNode(person_),
         c = g_.AddNode(person_);
  g_.AddEdge(a, b, knows_);
  g_.AddEdge(b, c, knows_);
  g_.AddEdge(c, b, knows_);
  ASSERT_TRUE(g_.RemoveNode(b).ok());
  EXPECT_FALSE(g_.NodeAlive(b));
  EXPECT_EQ(g_.NumEdges(), 0u);
  EXPECT_EQ(g_.OutDegree(a), 0u);
  EXPECT_EQ(g_.InDegree(c), 0u);
}

TEST_F(GraphTest, RemoveNodeWithSelfLoop) {
  NodeId a = g_.AddNode(person_);
  g_.AddEdge(a, a, knows_);
  ASSERT_TRUE(g_.RemoveNode(a).ok());
  EXPECT_EQ(g_.NumEdges(), 0u);
  EXPECT_EQ(g_.NumNodes(), 0u);
}

TEST_F(GraphTest, SetNodeLabelUpdatesIndex) {
  NodeId a = g_.AddNode(person_);
  EXPECT_EQ(g_.CountNodesWithLabel(person_), 1u);
  ASSERT_TRUE(g_.SetNodeLabel(a, city_).ok());
  EXPECT_EQ(g_.CountNodesWithLabel(person_), 0u);
  EXPECT_EQ(g_.CountNodesWithLabel(city_), 1u);
  EXPECT_EQ(g_.NodeLabel(a), city_);
}

TEST_F(GraphTest, SetLabelNoOpDoesNotJournal) {
  NodeId a = g_.AddNode(person_);
  size_t before = g_.JournalSize();
  ASSERT_TRUE(g_.SetNodeLabel(a, person_).ok());
  EXPECT_EQ(g_.JournalSize(), before);
}

TEST_F(GraphTest, AttrsRoundTrip) {
  NodeId a = g_.AddNode(person_);
  ASSERT_TRUE(g_.SetNodeAttr(a, name_, alice_).ok());
  EXPECT_EQ(g_.NodeAttr(a, name_), alice_);
  ASSERT_TRUE(g_.SetNodeAttr(a, name_, bob_).ok());
  EXPECT_EQ(g_.NodeAttr(a, name_), bob_);
  ASSERT_TRUE(g_.SetNodeAttr(a, name_, 0).ok());  // erase
  EXPECT_EQ(g_.NodeAttr(a, name_), 0u);
}

TEST_F(GraphTest, AttrIndexTracksValues) {
  NodeId a = g_.AddNode(person_), b = g_.AddNode(person_);
  g_.SetNodeAttr(a, name_, alice_);
  g_.SetNodeAttr(b, name_, alice_);
  EXPECT_EQ(g_.NodesWithAttr(name_, alice_).size(), 2u);
  g_.SetNodeAttr(b, name_, bob_);
  EXPECT_EQ(g_.NodesWithAttr(name_, alice_).size(), 1u);
  EXPECT_EQ(g_.NodesWithAttr(name_, bob_).size(), 1u);
  g_.RemoveNode(a);
  EXPECT_TRUE(g_.NodesWithAttr(name_, alice_).empty());
}

TEST_F(GraphTest, EdgeAttrs) {
  NodeId a = g_.AddNode(person_), b = g_.AddNode(person_);
  EdgeId e = g_.AddEdge(a, b, knows_).value();
  SymbolId conf = vocab_->Attr("conf");
  SymbolId v90 = vocab_->Value("90");
  ASSERT_TRUE(g_.SetEdgeAttr(e, conf, v90).ok());
  EXPECT_EQ(g_.EdgeAttr(e, conf), v90);
}

TEST_F(GraphTest, FindEdgeScansSmallerSide) {
  NodeId hub = g_.AddNode(person_);
  std::vector<NodeId> spokes;
  for (int i = 0; i < 50; ++i) {
    NodeId s = g_.AddNode(person_);
    g_.AddEdge(hub, s, knows_);
    spokes.push_back(s);
  }
  EXPECT_NE(g_.FindEdge(hub, spokes[17], knows_), kInvalidEdge);
  EXPECT_EQ(g_.FindEdge(spokes[17], hub, knows_), kInvalidEdge);
}

TEST_F(GraphTest, MergeUnionsNeighborhoods) {
  NodeId keep = g_.AddNode(person_), gone = g_.AddNode(person_);
  NodeId x = g_.AddNode(person_), y = g_.AddNode(person_);
  g_.AddEdge(gone, x, knows_);
  g_.AddEdge(y, gone, knows_);
  ASSERT_TRUE(g_.MergeNodes(keep, gone).ok());
  EXPECT_FALSE(g_.NodeAlive(gone));
  EXPECT_TRUE(g_.HasEdge(keep, x, knows_));
  EXPECT_TRUE(g_.HasEdge(y, keep, knows_));
}

TEST_F(GraphTest, MergeSkipsDuplicateEdges) {
  NodeId keep = g_.AddNode(person_), gone = g_.AddNode(person_);
  NodeId x = g_.AddNode(person_);
  g_.AddEdge(keep, x, knows_);
  g_.AddEdge(gone, x, knows_);
  ASSERT_TRUE(g_.MergeNodes(keep, gone).ok());
  EXPECT_EQ(g_.OutDegree(keep), 1u);
}

TEST_F(GraphTest, MergeCollapsesInterEdges) {
  NodeId keep = g_.AddNode(person_), gone = g_.AddNode(person_);
  g_.AddEdge(keep, gone, knows_);
  g_.AddEdge(gone, keep, knows_);
  ASSERT_TRUE(g_.MergeNodes(keep, gone).ok());
  EXPECT_EQ(g_.NumEdges(), 0u);
  EXPECT_EQ(g_.Degree(keep), 0u);
}

TEST_F(GraphTest, MergeCarriesMissingAttrs) {
  NodeId keep = g_.AddNode(person_), gone = g_.AddNode(person_);
  SymbolId year = vocab_->Attr("birth_year");
  g_.SetNodeAttr(gone, name_, alice_);
  g_.SetNodeAttr(keep, year, vocab_->Value("1980"));
  g_.SetNodeAttr(gone, year, vocab_->Value("1999"));  // keep wins
  ASSERT_TRUE(g_.MergeNodes(keep, gone).ok());
  EXPECT_EQ(g_.NodeAttr(keep, name_), alice_);
  EXPECT_EQ(g_.NodeAttr(keep, year), vocab_->Value("1980"));
}

TEST_F(GraphTest, MergeSelfFails) {
  NodeId a = g_.AddNode(person_);
  EXPECT_FALSE(g_.MergeNodes(a, a).ok());
}

TEST_F(GraphTest, UndoRestoresExactState) {
  NodeId a = g_.AddNode(person_), b = g_.AddNode(person_);
  g_.SetNodeAttr(a, name_, alice_);
  g_.AddEdge(a, b, knows_);
  uint64_t fp = g_.Fingerprint();
  size_t mark = g_.JournalSize();

  NodeId c = g_.AddNode(city_);
  g_.AddEdge(a, c, born_);
  g_.SetNodeLabel(b, city_);
  g_.SetNodeAttr(a, name_, bob_);
  g_.RemoveNode(b);
  EXPECT_NE(g_.Fingerprint(), fp);

  ASSERT_TRUE(g_.UndoTo(mark).ok());
  EXPECT_EQ(g_.Fingerprint(), fp);
  EXPECT_EQ(g_.NumNodes(), 2u);
  EXPECT_EQ(g_.NumEdges(), 1u);
  EXPECT_EQ(g_.NodeAttr(a, name_), alice_);
  EXPECT_EQ(g_.NodeLabel(b), person_);
  EXPECT_TRUE(g_.HasEdge(a, b, knows_));
}

TEST_F(GraphTest, UndoMergeRestores) {
  NodeId keep = g_.AddNode(person_), gone = g_.AddNode(person_);
  NodeId x = g_.AddNode(person_);
  g_.AddEdge(gone, x, knows_);
  g_.SetNodeAttr(gone, name_, alice_);
  uint64_t fp = g_.Fingerprint();
  size_t mark = g_.JournalSize();
  ASSERT_TRUE(g_.MergeNodes(keep, gone).ok());
  ASSERT_TRUE(g_.UndoTo(mark).ok());
  EXPECT_EQ(g_.Fingerprint(), fp);
  EXPECT_TRUE(g_.NodeAlive(gone));
  EXPECT_TRUE(g_.HasEdge(gone, x, knows_));
  EXPECT_EQ(g_.NodeAttr(gone, name_), alice_);
}

TEST_F(GraphTest, UndoRevivesSameIds) {
  NodeId a = g_.AddNode(person_), b = g_.AddNode(person_);
  EdgeId e = g_.AddEdge(a, b, knows_).value();
  size_t mark = g_.JournalSize();
  g_.RemoveEdge(e);
  ASSERT_TRUE(g_.UndoTo(mark).ok());
  EXPECT_TRUE(g_.EdgeAlive(e));
  EXPECT_EQ(g_.Edge(e).src, a);
}

TEST_F(GraphTest, UndoBeyondJournalFails) {
  EXPECT_FALSE(g_.UndoTo(5).ok());
}

TEST_F(GraphTest, JournalCostAccounting) {
  CostModel m;
  NodeId a = g_.AddNode(person_);
  NodeId b = g_.AddNode(person_);
  g_.AddEdge(a, b, knows_);
  // 2 node inserts + 1 edge insert
  EXPECT_DOUBLE_EQ(g_.CostSince(0, m), 3.0);
  size_t mark = g_.JournalSize();
  g_.RemoveNode(b);  // cascades the edge: edge_delete + node_delete
  EXPECT_DOUBLE_EQ(g_.CostSince(mark, m), 2.0);
}

TEST_F(GraphTest, CloneSharesNothingMutable) {
  NodeId a = g_.AddNode(person_);
  g_.SetNodeAttr(a, name_, alice_);
  Graph copy = g_.Clone();
  EXPECT_TRUE(copy.ContentEquals(g_));
  EXPECT_EQ(copy.JournalSize(), 0u);  // fresh journal
  copy.SetNodeAttr(a, name_, bob_);
  EXPECT_EQ(g_.NodeAttr(a, name_), alice_);
  EXPECT_FALSE(copy.ContentEquals(g_));
}

TEST_F(GraphTest, FingerprintOrderIndependent) {
  Graph g2(vocab_);
  // Same content, same ids, different insertion interleavings of attrs.
  NodeId a1 = g_.AddNode(person_);
  g_.SetNodeAttr(a1, name_, alice_);
  SymbolId year = vocab_->Attr("birth_year");
  g_.SetNodeAttr(a1, year, vocab_->Value("1980"));

  NodeId a2 = g2.AddNode(person_);
  g2.SetNodeAttr(a2, year, vocab_->Value("1980"));
  g2.SetNodeAttr(a2, name_, alice_);
  EXPECT_EQ(g_.Fingerprint(), g2.Fingerprint());
}

TEST_F(GraphTest, FingerprintSensitiveToContent) {
  NodeId a = g_.AddNode(person_);
  uint64_t fp1 = g_.Fingerprint();
  g_.SetNodeAttr(a, name_, alice_);
  uint64_t fp2 = g_.Fingerprint();
  EXPECT_NE(fp1, fp2);
}

TEST_F(GraphTest, NodesAndEdgesEnumerateAliveOnly) {
  NodeId a = g_.AddNode(person_), b = g_.AddNode(person_);
  EdgeId e = g_.AddEdge(a, b, knows_).value();
  g_.RemoveEdge(e);
  g_.RemoveNode(b);
  EXPECT_EQ(g_.Nodes().size(), 1u);
  EXPECT_TRUE(g_.Edges().empty());
  EXPECT_EQ(g_.NodeIdBound(), 2u);  // tombstone still counted in bound
}

}  // namespace
}  // namespace grepair
