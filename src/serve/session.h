// The transport-independent serve protocol: typed requests, structured
// responses, and a per-client Session over one shared RepairService.
//
// The protocol used to live inside the CLI's stdio loop (one session, one
// client). This layer splits it into three pieces any transport can drive
// (DESIGN.md "Network serving"):
//
//   - ParseRequest: one pass from a protocol line to a tagged Request (verb
//     resolved, arity checked, ids parsed, symbols interned) — no
//     re-tokenizing per verb downstream.
//   - ErrResponse / error codes: every protocol failure is a machine-
//     parseable `err <code> <msg>` line. The code set is closed and
//     documented below; messages are human-readable detail.
//   - Session: per-client protocol state. In kImmediate mode (stdio, the
//     single exclusive client) edits apply to the service as they arrive and
//     responses carry real element ids — byte-identical to the historical
//     stdio protocol. In kStaged mode (TCP, many concurrent clients) edits
//     buffer inside the session and apply atomically at `commit` under the
//     shared service mutex, so concurrent clients interleave at commit
//     granularity and the outcome equals replaying the same per-client op
//     blocks through one stdio session in commit order.
//
// Error codes (`err <code> <msg>`):
//   unknown_verb  the verb is not part of the protocol
//   arity         known verb, wrong argument count
//   bad_id        an element id failed to parse or overflows the id space
//   bad_request   the line is malformed in some other way
//   rejected      the service refused an edit (dead id, bad endpoint, ...),
//                 or a read verb could not be served (publishing disabled,
//                 nothing published yet, unknown rule filter)
//   staged_edits  restore refused while uncommitted edits are staged
//   busy          admission control shed the connection or request
//   io            a file/device operation failed (save/trace/...), or a
//                 WAL append failed — the batch was rolled back and the
//                 service is read-only until restarted
//   corrupt       stored bytes failed validation (restore, recovery)
//   internal      invariant failure inside the service (a bug)
#ifndef GREPAIR_SERVE_SESSION_H_
#define GREPAIR_SERVE_SESSION_H_

#include <mutex>
#include <string>
#include <vector>

#include "graph/edit_log.h"
#include "graph/vocabulary.h"
#include "serve/repair_service.h"
#include "util/status.h"

namespace grepair {
namespace serve {

/// Every verb of the line protocol. Edit verbs (kAddNode..kSetEdgeAttr)
/// carry an EditEntry; file verbs (kTrace..kRestore) carry a path; the rest
/// are bare.
enum class Verb {
  kAddNode,
  kAddEdge,
  kRemoveNode,
  kRemoveEdge,
  kSetNodeLabel,
  kSetEdgeLabel,
  kSetNodeAttr,
  kSetEdgeAttr,
  kCommit,
  kDetect,
  kViolations,
  kStats,
  kMetrics,
  kTrace,
  kSave,
  kSnapshot,
  kRestore,
  kQuit,
  kShutdown,
};

/// One parsed protocol request: the verb plus exactly the payload it needs.
struct Request {
  Verb verb = Verb::kCommit;
  /// Edit verbs only: the journal-shaped op, ids parsed and symbols
  /// interned, ready for RepairService::ApplyEdit.
  EditEntry edit;
  /// kTrace/kSave/kSnapshot/kRestore only: the target file path.
  std::string path;
  /// kDetect only: optional rule-name filter ("" = all rules). Kept as a
  /// raw string — read verbs must never intern (see IsPublishedRead).
  std::string rule;
  /// kViolations only: backlog page window.
  size_t offset = 0;
  size_t limit = 100;

  bool IsEdit() const { return verb <= Verb::kSetEdgeAttr; }
  /// Read verbs execute against the published snapshot generation, OUTSIDE
  /// the service mutex: their parse touches no shared state (no interning)
  /// and their execution pins an immutable generation, so any number of
  /// them run concurrently with each other and with the writer.
  bool IsPublishedRead() const {
    return verb == Verb::kDetect || verb == Verb::kViolations;
  }
};

/// Parses one protocol line into a Request. Interns labels/attrs/values into
/// `vocab` (callers serialize access — interning is not thread-safe).
/// Failure statuses map onto the protocol codes: kNotFound = unknown_verb,
/// kInvalidArgument = arity, kOutOfRange = bad_id, kParseError =
/// bad_request; render them with ErrResponseFor(). Blank/comment lines are
/// the transport's concern and never reach this function.
Result<Request> ParseRequest(const std::string& line,
                             const VocabularyPtr& vocab);

/// A structured protocol error line: "err <code> <msg>".
std::string ErrResponse(const std::string& code, const std::string& msg);

/// Renders a ParseRequest failure as its `err <code> <msg>` line.
std::string ParseErrResponse(const Status& status);

/// The historical one-line rendering of a committed batch (shared by the
/// stdio transport's pending-commit-on-quit path and the session).
std::string FormatBatchLine(const BatchResult& r);

/// How a Session applies edit verbs.
enum class SessionMode {
  /// Edits hit the service as they arrive; responses carry real element ids
  /// ("node 12"). Correct only for a transport whose session is the
  /// service's sole client between commits (stdio).
  kImmediate,
  /// Edits buffer in the session ("staged N" responses) and apply as one
  /// atomic block at commit. The mode for concurrent transports.
  kStaged,
};

/// Per-client protocol state over a shared RepairService. When `mu` is
/// non-null every service access (including ParseRequest's interning) runs
/// under it, so any number of sessions can share one service; a null mutex
/// is for single-client transports. Sessions are not themselves
/// thread-safe — one session belongs to one connection.
class Session {
 public:
  Session(RepairService* service, SessionMode mode, std::mutex* mu = nullptr);

  /// Parses and executes one protocol line; returns the response line ("" =
  /// no response: blank/comment input, or quit/shutdown which only raise
  /// their flag for the transport to act on). The response may span
  /// multiple physical lines (`metrics`); transports append the final
  /// newline.
  std::string HandleLine(const std::string& line);

  /// Executes an already-parsed request (the conformance suite drives this
  /// directly). Locks the service mutex internally.
  std::string Handle(const Request& req);

  /// Edit ops staged in this session and not yet committed (kStaged only).
  size_t StagedEdits() const { return staged_.size(); }

  /// Raised by the quit / shutdown verbs; the transport closes the
  /// connection (quit) or stops the whole listener (shutdown). Staged,
  /// uncommitted edits are discarded with the session.
  bool quit_requested() const { return quit_; }
  bool shutdown_requested() const { return shutdown_; }

 private:
  std::unique_lock<std::mutex> LockService();
  std::string HandleLocked(const Request& req);
  /// Read verbs (detect / violations): never takes the service mutex.
  std::string HandleRead(const Request& req);
  std::string ApplyImmediate(const EditEntry& op);

  RepairService* service_;
  SessionMode mode_;
  std::mutex* mu_;  ///< null = exclusive single-client transport
  std::vector<EditEntry> staged_;
  bool quit_ = false;
  bool shutdown_ = false;
};

}  // namespace serve
}  // namespace grepair

#endif  // GREPAIR_SERVE_SESSION_H_
