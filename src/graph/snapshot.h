// GraphSnapshot: a read-optimized copy of a graph state built for repeated
// subgraph matching. Where the journaled Graph answers reads through
// per-node vectors and hash-map label/attr indexes, the snapshot packs:
//   - CSR out/in adjacency: one flat edge array per direction plus offsets,
//     preserving the source graph's per-node adjacency order EXACTLY (match
//     enumeration order — and therefore every downstream repair decision —
//     depends on that order, including revived-edge positions after undo);
//   - dense node/edge label, endpoint and attribute columns (tombstones
//     keep their data addressable, mirroring Graph's identity semantics);
//   - label- and attr-partitioned candidate indexes: alive node ids grouped
//     per label / per (attr, value), each group ascending, so
//     Matcher::SeedCandidates is a contiguous-range copy with no sort;
//   - an alive-edge index sorted by (src, dst, label, id) that answers
//     HasEdge in O(log E) instead of an adjacency scan.
//
// INCREMENTAL MAINTENANCE. A snapshot is no longer single-use: Patch()
// advances it by a slice of the source graph's delta log (physical replay
// records, including undo inverses — see Graph::EnableDeltaLog) in
// O(delta), instead of paying the O(V + E) constructor again. Patching is
// overlay-based: dense columns mutate in place; a touched node's adjacency
// moves copy-on-write into per-node overlay vectors (untouched nodes keep
// reading the flat CSR rows); touched label/attr candidate groups move
// copy-on-write into per-group sorted overlay vectors; the sorted edge
// index gains a sorted "added" side array while invalidated base entries
// are tombstoned in a hash set. Every read remains bit-identical to the
// live Graph at the patched position — the serving layer
// (RepairService::Commit) caches one snapshot across commits and patches
// it per batch, rebuilding only when the accumulated patch fraction
// crosses its threshold. Patch() must run on the writer thread BEFORE a
// pass fans out; during a pass the snapshot is frozen and shared read-only
// across all workers (no synchronization needed).
//
// One snapshot per detection pass is built (or reused, see the DetectAll
// `snapshot` parameter) by DetectAll / DetectInto and
// RepairService::Commit when the pool fans out. Equivalence — including
// patched snapshots against fresh builds and the live graph — is asserted
// by tests/test_snapshot.cc and tests/test_snapshot_patch.cc. See
// DESIGN.md "Storage model".
#ifndef GREPAIR_GRAPH_SNAPSHOT_H_
#define GREPAIR_GRAPH_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/graph_view.h"

namespace grepair {

/// Which slice of the id space a GraphSnapshot materializes: shard `index`
/// of `count` owns the nodes with StorageShardOfNode(n, count) == index and
/// the edges whose SRC it owns. The default {0, 1} owns everything — the
/// monolithic snapshot. A sharded instance leaves non-owned ids at column
/// defaults (never read: ShardedSnapshot routes every read to the owner)
/// and its counts/partitions/indexes cover owned elements only.
struct SnapshotShard {
  uint32_t index = 0;
  uint32_t count = 1;

  bool OwnsNode(NodeId n) const {
    return count <= 1 || StorageShardOfNode(n, count) == index;
  }
};

class GraphSnapshot final : public GraphView {
 public:
  /// Builds from any GraphView (in practice: the live Graph). O(V + E +
  /// sort of the edge index). The source must not be mutated during
  /// construction. A non-default `shard` materializes only that shard's
  /// slice (see SnapshotShard); the constructor reads only `g`'s plain
  /// accessors (no lazily populated indexes), so shard builds of one
  /// source may run concurrently.
  explicit GraphSnapshot(const GraphView& g, SnapshotShard shard = {});

  /// Advances the snapshot by `n` physical replay records (a slice of
  /// Graph::DeltaLogSince from the position this snapshot mirrors).
  /// O(records), with a one-time copy-on-write charge per adjacency list /
  /// candidate group first touched over the snapshot's lifetime. After the
  /// call every read is bit-identical to the live graph at the new
  /// position. A sharded snapshot applies only the records that touch its
  /// slice (AppliesTo) and skips the rest, so the same full slice can be
  /// handed to every shard — including concurrently: shards share no
  /// mutable state. NOT thread-safe per instance: patch on the writer
  /// thread (or one task per shard), between passes.
  void Patch(const EditEntry* records, size_t n);

  /// True when `rec` touches this snapshot's shard slice — the unit of the
  /// per-shard dirty accounting (PatchedEdits counts exactly the records
  /// AppliesTo accepted). Always true for the monolithic default shard.
  bool AppliesTo(const EditEntry& rec) const;

  /// The shard slice this snapshot materializes ({0, 1} = monolithic).
  const SnapshotShard& shard() const { return shard_; }

  /// Total records applied by Patch since construction — the "accumulated
  /// patch fraction" input of rebuild heuristics.
  size_t PatchedEdits() const { return patched_edits_; }

  const VocabularyPtr& vocab() const override { return vocab_; }

  bool NodeAlive(NodeId n) const override {
    return n < node_alive_.size() && node_alive_[n] != 0;
  }
  bool EdgeAlive(EdgeId e) const override {
    return e < edge_alive_.size() && edge_alive_[e] != 0;
  }
  size_t NumNodes() const override { return num_nodes_; }
  size_t NumEdges() const override { return num_edges_; }
  size_t NodeIdBound() const override { return node_alive_.size(); }
  size_t EdgeIdBound() const override { return edge_alive_.size(); }

  SymbolId NodeLabel(NodeId n) const override { return node_label_[n]; }
  SymbolId EdgeLabel(EdgeId e) const override { return edge_label_[e]; }
  EdgeView Edge(EdgeId e) const override {
    return {e, edge_src_[e], edge_dst_[e], edge_label_[e]};
  }
  SymbolId NodeAttr(NodeId n, SymbolId attr) const override {
    return node_attrs_[n].Get(attr);
  }
  SymbolId EdgeAttr(EdgeId e, SymbolId attr) const override {
    return edge_attrs_[e].Get(attr);
  }
  const AttrMap& NodeAttrs(NodeId n) const override { return node_attrs_[n]; }
  const AttrMap& EdgeAttrs(EdgeId e) const override { return edge_attrs_[e]; }

  IdSpan OutEdges(NodeId n) const override {
    if (has_patches_ && adj_patched_[n]) {
      const std::vector<EdgeId>& v = out_patch_.find(n)->second;
      return {v.data(), v.size()};
    }
    return {out_edges_.data() + out_offset_[n],
            out_offset_[n + 1] - out_offset_[n]};
  }
  IdSpan InEdges(NodeId n) const override {
    if (has_patches_ && adj_patched_[n]) {
      const std::vector<EdgeId>& v = in_patch_.find(n)->second;
      return {v.data(), v.size()};
    }
    return {in_edges_.data() + in_offset_[n],
            in_offset_[n + 1] - in_offset_[n]};
  }

  EdgeId FindEdge(NodeId src, NodeId dst, SymbolId label) const override;
  /// O(log E) binary search over the (src, dst, label)-sorted edge index
  /// (base + patch-added side array).
  bool HasEdge(NodeId src, NodeId dst, SymbolId label) const override;
  /// The index probe of HasEdge WITHOUT the endpoint-liveness prechecks —
  /// the routing hook ShardedSnapshot::HasEdge needs: the shard owning
  /// `src` holds the edge index entry, but `dst` may live (and be alive)
  /// in another shard, so the caller checks liveness globally first.
  bool EdgeIndexContains(NodeId src, NodeId dst, SymbolId label) const;

  std::vector<NodeId> Nodes() const override;
  std::vector<EdgeId> Edges() const override;
  bool CollectNodesWithLabel(SymbolId label,
                             std::vector<NodeId>* out) const override;
  bool CollectNodesWithAttr(SymbolId attr, SymbolId value,
                            std::vector<NodeId>* out) const override;
  size_t CountNodesWithLabel(SymbolId label) const override;
  size_t CountEdgesWithLabel(SymbolId label) const override;

  const GraphSnapshot* AsSnapshot() const override { return this; }

  /// The label-partitioned candidate index as a raw range: alive nodes
  /// carrying `label` (0 = all alive), ascending, contiguous.
  IdSpan NodesWithLabelSorted(SymbolId label) const;
  /// Same for the (attr, value) partitions.
  IdSpan NodesWithAttrSorted(SymbolId attr, SymbolId value) const;

  /// Approximate heap footprint: packed columns and indexes, the attribute
  /// maps' heap payload, the partition directories, and any patch overlay
  /// state (documented in DESIGN.md "Storage model").
  size_t MemoryBytes() const;

 private:
  struct Range {
    uint32_t offset = 0;
    uint32_t len = 0;
  };

  static uint64_t AttrKey(SymbolId attr, SymbolId value) {
    return (static_cast<uint64_t>(attr) << 32) | value;
  }

  /// Edge ownership = ownership of its src. Only owned edges ever get
  /// their src column populated, so a default (kInvalidNode) src means
  /// "not this shard's edge" (always false under the monolithic shard
  /// only for ids beyond the columns).
  bool OwnsEdge(EdgeId e) const {
    return e < edge_src_.size() && edge_src_[e] != kInvalidNode &&
           shard_.OwnsNode(edge_src_[e]);
  }

  // --- Patch plumbing ---------------------------------------------------
  void PatchOne(const EditEntry& rec);
  void PatchAddNode(const EditEntry& rec);
  void PatchRemoveNode(const EditEntry& rec);
  void PatchAddEdge(const EditEntry& rec);
  void PatchRemoveEdge(const EditEntry& rec);
  /// Grows the node/edge columns (defaults) so `id` is addressable.
  void EnsureNodeColumns(NodeId n);
  void EnsureEdgeColumns(EdgeId e);
  /// Copy-on-write adjacency overlay for node n (materializes BOTH
  /// directions from the base CSR rows on first touch).
  void TouchAdjacency(NodeId n);
  /// Fresh empty overlay for a node added/revived by a patch.
  void FreshAdjacency(NodeId n);
  /// Copy-on-write candidate-group overlays (each stays ascending).
  std::vector<NodeId>& TouchLabelGroup(SymbolId label);
  std::vector<NodeId>& TouchAttrGroup(uint64_t key);
  /// True when (src, dst, label) of a < that of b (id tie-break), over the
  /// CURRENT columns.
  bool EdgeSearchLess(EdgeId a, EdgeId b) const;
  /// The label a base edge_search_ entry was SORTED under. Relabeling an
  /// edge in place would silently re-key the base array and break its
  /// binary search for unrelated edges, so the first kSetEdgeLabel record
  /// snapshots the build-time labels and base searches keep comparing
  /// against those (a non-tombstoned base entry always has current label
  /// == build label, so accepts are unaffected).
  SymbolId BaseSearchLabel(EdgeId e) const {
    return base_edge_label_.empty() ? edge_label_[e] : base_edge_label_[e];
  }
  void SnapshotBaseEdgeLabels();
  /// Maintains the patched side of the sorted edge index.
  void SearchIndexInsert(EdgeId e);
  bool SearchIndexEraseAdded(EdgeId e);
  void SearchIndexInvalidate(EdgeId e);
  /// Scan of one sorted edge array for (src, dst, label); label==0 accepts
  /// any label. `base` entries must additionally be alive and not
  /// invalidated by a patch.
  bool SearchIndexContains(const std::vector<EdgeId>& index, NodeId src,
                           NodeId dst, SymbolId label, bool base) const;
  /// Membership of e in the BASE alive-edge list (alive at build time).
  bool InBaseAliveEdges(EdgeId e) const;

  VocabularyPtr vocab_;
  SnapshotShard shard_;
  size_t num_nodes_ = 0;  ///< owned alive nodes (all alive when monolithic)
  size_t num_edges_ = 0;  ///< owned alive edges

  // Dense columns over the full id space (tombstones included).
  std::vector<uint8_t> node_alive_;
  std::vector<SymbolId> node_label_;
  std::vector<AttrMap> node_attrs_;
  std::vector<uint8_t> edge_alive_;
  std::vector<NodeId> edge_src_;
  std::vector<NodeId> edge_dst_;
  std::vector<SymbolId> edge_label_;
  std::vector<AttrMap> edge_attrs_;

  // CSR adjacency, per-node order copied verbatim from the source view.
  // Rows cover ids < base_node_bound_ only; patched or later-added nodes
  // read their overlay vectors instead (adj_patched_ flags them).
  std::vector<uint32_t> out_offset_;  // base_node_bound_+1 entries
  std::vector<uint32_t> in_offset_;
  std::vector<EdgeId> out_edges_;
  std::vector<EdgeId> in_edges_;

  // Label-partitioned candidate index: groups of ascending alive node ids.
  // label_dir_[0] covers ALL alive nodes (mirrors Graph's label_index_[0]).
  std::vector<NodeId> label_nodes_;
  std::unordered_map<SymbolId, Range> label_dir_;
  std::vector<NodeId> attr_nodes_;
  std::unordered_map<uint64_t, Range> attr_dir_;

  // Alive edges sorted by (src, dst, label, id) for HasEdge; and ascending
  // alive edge ids for Edges(). Both are BASE (build-time) state once a
  // patch lands: edge_alive_ / edge_search_dead_ filter stale entries and
  // the *_added_ side arrays carry additions.
  std::vector<EdgeId> edge_search_;
  std::vector<EdgeId> alive_edges_;
  std::unordered_map<SymbolId, size_t> edge_label_count_;

  // --- Patch overlay state ---------------------------------------------
  size_t base_node_bound_ = 0;  ///< node ids with valid base CSR rows
  size_t base_edge_bound_ = 0;
  size_t patched_edits_ = 0;
  bool has_patches_ = false;
  /// Per node: nonzero when its adjacency lives in out_patch_/in_patch_.
  /// Sized with the node columns; every id >= base_node_bound_ is flagged.
  std::vector<uint8_t> adj_patched_;
  std::unordered_map<NodeId, std::vector<EdgeId>> out_patch_;
  std::unordered_map<NodeId, std::vector<EdgeId>> in_patch_;
  /// Copy-on-write candidate groups; presence overrides label_dir_ /
  /// attr_dir_ for that key.
  std::unordered_map<SymbolId, std::vector<NodeId>> label_patch_;
  std::unordered_map<uint64_t, std::vector<NodeId>> attr_patch_;
  /// Sorted (src, dst, label, id) ids added since build; always alive with
  /// current columns.
  std::vector<EdgeId> edge_search_added_;
  /// Base edge_search_ entries invalidated by a patch (removed or
  /// relabeled; a revived edge re-enters through edge_search_added_).
  std::unordered_set<EdgeId> edge_search_dead_;
  /// Build-time labels of ids < base_edge_bound_, captured lazily by the
  /// first relabel patch so the base edge index keeps its sort key.
  std::vector<SymbolId> base_edge_label_;
  /// Ascending alive edge ids NOT covered by the base alive_edges_ list.
  std::vector<EdgeId> alive_added_;
};

/// The one-snapshot-per-pass idiom of the parallel read paths: returns `g`
/// itself when it already is a snapshot view (monolithic OR sharded),
/// otherwise builds one into `*storage` (which owns it for the duration of
/// the pass) and returns that. Keeps the build-or-reuse gate in one place.
inline const GraphView& SnapshotForPass(
    const GraphView& g, std::unique_ptr<GraphSnapshot>* storage) {
  if (g.IsSnapshotView()) return g;
  *storage = std::make_unique<GraphSnapshot>(g);
  return **storage;
}

}  // namespace grepair

#endif  // GREPAIR_GRAPH_SNAPSHOT_H_
