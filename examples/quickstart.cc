// Quickstart: build a tiny graph, write two repairing rules in the DSL,
// run the engine, inspect the fixes. Start here.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "grr/rule_parser.h"
#include "repair/engine.h"

using namespace grepair;

int main() {
  // 1. A vocabulary is the shared symbol space for a graph and its rules.
  VocabularyPtr vocab = MakeVocabulary();

  // 2. Build a small social graph with two data quality problems:
  //    alice knows bob, but bob doesn't know alice (incomplete), and
  //    carol "knows" herself (conflict).
  Graph g(vocab);
  SymbolId person = vocab->Label("Person");
  SymbolId knows = vocab->Label("knows");
  SymbolId name = vocab->Attr("name");

  NodeId alice = g.AddNode(person);
  NodeId bob = g.AddNode(person);
  NodeId carol = g.AddNode(person);
  g.SetNodeAttr(alice, name, vocab->Value("alice"));
  g.SetNodeAttr(bob, name, vocab->Value("bob"));
  g.SetNodeAttr(carol, name, vocab->Value("carol"));
  g.AddEdge(alice, bob, knows);
  g.AddEdge(carol, carol, knows);
  g.ResetJournal();  // measure repair cost from here

  // 3. Two graph-repairing rules in the DSL: one per error.
  auto rules = ParseRules(R"(
    RULE knows_symmetric CLASS incomplete
    MATCH (x:Person)-[knows]->(y:Person)
    WHERE NOT EDGE (y)-[knows]->(x)
    ACTION ADD_EDGE (y)-[knows]->(x)

    RULE no_self_knows CLASS conflict
    MATCH (x:Person)-[e:knows]->(x)
    ACTION DEL_EDGE e
  )",
                          vocab);
  if (!rules.ok()) {
    std::fprintf(stderr, "rule parse error: %s\n",
                 rules.status().ToString().c_str());
    return 1;
  }

  // 4. Repair.
  std::printf("before: %s, violations=%zu\n", g.DebugSummary().c_str(),
              CountViolations(g, rules.value()));

  RepairEngine engine;  // greedy + incremental by default
  auto result = engine.Run(&g, rules.value());
  if (!result.ok()) {
    std::fprintf(stderr, "repair failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 5. Inspect.
  std::printf("after:  %s, violations=%zu\n", g.DebugSummary().c_str(),
              result.value().remaining_violations);
  std::printf("applied %zu fixes, repair cost %.1f:\n",
              result.value().applied.size(), result.value().repair_cost);
  for (const AppliedFix& f : result.value().applied)
    std::printf("  %s\n", f.ToString(*vocab).c_str());

  std::printf("bob now knows alice: %s\n",
              g.HasEdge(bob, alice, knows) ? "yes" : "no");
  std::printf("carol's self-loop is gone: %s\n",
              g.HasEdge(carol, carol, knows) ? "no" : "yes");
  return 0;
}
