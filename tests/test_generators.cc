// Tests for the synthetic dataset generators: schema invariants the rules
// assume must hold on CLEAN generated graphs (zero violations).
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "grr/standard_rules.h"
#include "repair/engine.h"

namespace grepair {
namespace {

TEST(KgGeneratorTest, SizesMatchOptions) {
  auto vocab = MakeVocabulary();
  KgSchema s = KgSchema::Create(vocab.get());
  KgOptions opt;
  opt.num_persons = 200;
  opt.num_cities = 30;
  opt.num_countries = 5;
  opt.num_orgs = 20;
  Graph g = GenerateKg(vocab, s, opt);
  EXPECT_EQ(g.CountNodesWithLabel(s.person), 200u);
  EXPECT_EQ(g.CountNodesWithLabel(s.city), 30u);
  EXPECT_EQ(g.CountNodesWithLabel(s.country), 5u);
  EXPECT_EQ(g.CountNodesWithLabel(s.org), 20u);
  EXPECT_EQ(g.JournalSize(), 0u);
}

TEST(KgGeneratorTest, EveryCountryHasExactlyOneCapital) {
  auto vocab = MakeVocabulary();
  KgSchema s = KgSchema::Create(vocab.get());
  KgOptions opt;
  opt.num_persons = 50;
  opt.num_cities = 20;
  opt.num_countries = 8;
  Graph g = GenerateKg(vocab, s, opt);
  for (NodeId c : g.NodesWithLabel(s.country)) {
    size_t caps = 0;
    for (EdgeId e : g.InEdges(c))
      if (g.EdgeLabel(e) == s.capital_of) ++caps;
    EXPECT_EQ(caps, 1u);
  }
}

TEST(KgGeneratorTest, SymmetricRelationsAreSymmetric) {
  auto vocab = MakeVocabulary();
  KgSchema s = KgSchema::Create(vocab.get());
  KgOptions opt;
  opt.num_persons = 300;
  Graph g = GenerateKg(vocab, s, opt);
  for (EdgeId e : g.Edges()) {
    EdgeView v = g.Edge(e);
    if (v.label == s.knows || v.label == s.spouse) {
      EXPECT_TRUE(g.HasEdge(v.dst, v.src, v.label));
    }
  }
}

TEST(KgGeneratorTest, CleanGraphHasZeroViolations) {
  auto vocab = MakeVocabulary();
  KgSchema s = KgSchema::Create(vocab.get());
  KgOptions opt;
  opt.num_persons = 300;
  opt.num_cities = 40;
  opt.num_countries = 8;
  opt.num_orgs = 25;
  Graph g = GenerateKg(vocab, s, opt);
  auto rules = KgRules(vocab);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_EQ(CountViolations(g, rules.value()), 0u);
}

TEST(KgGeneratorTest, DeterministicForSeed) {
  auto vocab = MakeVocabulary();
  KgSchema s = KgSchema::Create(vocab.get());
  KgOptions opt;
  opt.num_persons = 100;
  Graph g1 = GenerateKg(vocab, s, opt);
  Graph g2 = GenerateKg(vocab, s, opt);
  EXPECT_EQ(g1.Fingerprint(), g2.Fingerprint());
  opt.seed = 43;
  Graph g3 = GenerateKg(vocab, s, opt);
  EXPECT_NE(g1.Fingerprint(), g3.Fingerprint());
}

TEST(SocialGeneratorTest, CleanGraphHasZeroViolations) {
  auto vocab = MakeVocabulary();
  SocialSchema s = SocialSchema::Create(vocab.get());
  SocialOptions opt;
  opt.num_persons = 500;
  Graph g = GenerateSocial(vocab, s, opt);
  auto rules = SocialRules(vocab);
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(CountViolations(g, rules.value()), 0u);
}

TEST(SocialGeneratorTest, PowerLawishDegreeSkew) {
  auto vocab = MakeVocabulary();
  SocialSchema s = SocialSchema::Create(vocab.get());
  SocialOptions opt;
  opt.num_persons = 2000;
  Graph g = GenerateSocial(vocab, s, opt);
  size_t max_deg = 0, total = 0;
  for (NodeId n : g.Nodes()) {
    max_deg = std::max(max_deg, g.Degree(n));
    total += g.Degree(n);
  }
  double avg = double(total) / double(g.NumNodes());
  // Preferential attachment: hub degree far exceeds the average.
  EXPECT_GT(double(max_deg), 5.0 * avg);
}

TEST(CitationGeneratorTest, CleanGraphHasZeroViolations) {
  auto vocab = MakeVocabulary();
  CitationSchema s = CitationSchema::Create(vocab.get());
  CitationOptions opt;
  opt.num_papers = 400;
  opt.num_authors = 150;
  Graph g = GenerateCitation(vocab, s, opt);
  auto rules = CitationRules(vocab);
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(CountViolations(g, rules.value()), 0u);
}

TEST(CitationGeneratorTest, CitationsPointBackwardsInTime) {
  auto vocab = MakeVocabulary();
  CitationSchema s = CitationSchema::Create(vocab.get());
  CitationOptions opt;
  opt.num_papers = 300;
  Graph g = GenerateCitation(vocab, s, opt);
  auto year = [&](NodeId p) {
    return std::stoi(vocab->ValueName(g.NodeAttr(p, s.year)));
  };
  for (EdgeId e : g.Edges()) {
    EdgeView v = g.Edge(e);
    if (v.label == s.cites) {
      EXPECT_GT(year(v.src), year(v.dst));
    }
  }
}

TEST(CitationGeneratorTest, EveryPaperHasAuthorAndVenue) {
  auto vocab = MakeVocabulary();
  CitationSchema s = CitationSchema::Create(vocab.get());
  CitationOptions opt;
  opt.num_papers = 200;
  Graph g = GenerateCitation(vocab, s, opt);
  for (NodeId p : g.NodesWithLabel(s.paper)) {
    size_t authors = 0, venues = 0;
    for (EdgeId e : g.OutEdges(p)) {
      if (g.EdgeLabel(e) == s.authored_by) ++authors;
      if (g.EdgeLabel(e) == s.published_in) ++venues;
    }
    EXPECT_GE(authors, 1u);
    EXPECT_EQ(venues, 1u);
  }
}

}  // namespace
}  // namespace grepair
