// F5 — Runtime vs graph size: repair wall-clock on knowledge graphs from
// ~1.2k to ~19k nodes (5% errors). "greedy_full" is the same engine with
// incremental re-detection disabled (full re-detection after every fix) —
// the configuration every non-incremental system is stuck with. Expected
// shape: the incremental engines (greedy/batch) grow near-linearly;
// greedy_full grows super-linearly (fixes x full-scan) and the gap widens
// by an order of magnitude across the sweep; it is skipped at the largest
// size where it would dominate the whole suite's runtime.
#include "bench_common.h"

using namespace grepair;
using namespace grepair::bench;

int main() {
  TableWriter t("F5: repair runtime vs graph size (KG, 5% errors)",
                {"persons", "|V|", "|E|", "naive_ms", "greedy_ms",
                 "batch_ms", "greedy_full_ms", "speedup_full/incr"});

  const size_t kPersons[] = {1000, 2000, 4000, 8000, 16000};
  const size_t kFullRedetectCap = 8000;  // keep the suite fast
  for (size_t persons : kPersons) {
    KgOptions gopt;
    gopt.num_persons = persons;
    gopt.num_cities = persons / 10;
    gopt.num_countries = std::max<size_t>(10, persons / 200);
    gopt.num_orgs = persons / 15;
    InjectOptions iopt;
    iopt.rate = 0.05;
    DatasetBundle bundle = MustKgBundle(gopt, iopt);

    MethodOutcome naive = MustRun(bundle, "naive");
    MethodOutcome greedy = MustRun(bundle, "greedy");
    MethodOutcome batch = MustRun(bundle, "batch");

    std::string full_ms = "-";
    std::string speedup = "-";
    if (persons <= kFullRedetectCap) {
      RepairOptions full_opt;
      full_opt.incremental = false;
      MethodOutcome full = MustRun(bundle, "greedy", full_opt);
      full_ms = TableWriter::Num(full.repair.total_ms, 1);
      speedup = TableWriter::Num(
          full.repair.total_ms / std::max(0.01, greedy.repair.total_ms), 1);
    }

    t.AddRow({TableWriter::Int(int64_t(persons)),
              TableWriter::Int(int64_t(bundle.graph.NumNodes())),
              TableWriter::Int(int64_t(bundle.graph.NumEdges())),
              TableWriter::Num(naive.repair.total_ms, 1),
              TableWriter::Num(greedy.repair.total_ms, 1),
              TableWriter::Num(batch.repair.total_ms, 1), full_ms, speedup});
  }

  t.Print();
  std::puts("\nCSV:");
  std::fputs(t.ToCsv().c_str(), stdout);
  return 0;
}
