// Repair provenance: human-readable explanations of what the engine did and
// why, plus a Graphviz diff of the repair. Production users audit repairs
// before trusting them; this module is that audit surface.
#ifndef GREPAIR_REPAIR_EXPLAIN_H_
#define GREPAIR_REPAIR_EXPLAIN_H_

#include <string>

#include "grr/rule.h"
#include "repair/engine.h"

namespace grepair {

/// One-line explanation of a fix: rule, error class, operation, and the
/// affected elements (with `name` attributes when present).
/// Example: "[conflict] one_birthplace: deleted born_in edge
///           Person(n17 "person17") -> City(n203 "city3")".
std::string ExplainFix(const GraphView& g, const RuleSet& rules,
                       const AppliedFix& fix);

/// Multi-line report: per-class and per-rule fix counts, cost, timing, and
/// the first `max_fixes` individual explanations.
std::string ExplainRepair(const GraphView& g, const RuleSet& rules,
                          const RepairResult& result, size_t max_fixes = 20);

/// Graphviz DOT of the repaired graph with the repair diff highlighted:
/// created elements green, relabeled/re-attributed orange, and removed
/// elements drawn as dashed red ghosts (reconstructed from the journal
/// range covered by `result`).
std::string RepairDiffDot(const Graph& repaired,
                          const RepairResult& result);

}  // namespace grepair

#endif  // GREPAIR_REPAIR_EXPLAIN_H_
