#include "consistency/trigger_graph.h"

#include <functional>
#include <map>
#include <set>

#include "util/strings.h"

namespace grepair {
namespace {

// Whether an edge effect concerns self-loops, non-loops, or possibly both.
enum class LoopKind : uint8_t { kLoop, kNonLoop, kAny };

bool LoopCompatible(LoopKind a, LoopKind b) {
  if (a == LoopKind::kAny || b == LoopKind::kAny) return true;
  return a == b;
}

struct EdgeEffect {
  SymbolId label;  // 0 = any
  LoopKind loop;
};

// What an action can create / delete, at the label level. Label 0 stands
// for "any label" (wildcards and merges are conservatively 'any').
struct Effects {
  std::vector<SymbolId> creates_node_labels;
  std::vector<EdgeEffect> creates_edges;
  std::vector<SymbolId> deletes_node_labels;
  std::vector<EdgeEffect> deletes_edges;
};

// An injective pattern edge between DISTINCT vars can only bind non-loop
// edges; a same-var pattern edge only self-loops.
LoopKind PatternEdgeLoopKind(const PatternEdge& e) {
  return e.src == e.dst ? LoopKind::kLoop : LoopKind::kNonLoop;
}

Effects ActionEffects(const Rule& r) {
  Effects fx;
  const RepairAction& a = r.action();
  const Pattern& p = r.pattern();
  switch (a.kind) {
    case ActionKind::kAddEdge:
      fx.creates_edges.push_back(
          {a.label, a.var == a.var2 ? LoopKind::kLoop : LoopKind::kNonLoop});
      break;
    case ActionKind::kAddNode:
      fx.creates_node_labels.push_back(a.node_label);
      // The fresh node is distinct from the anchor: never a self-loop.
      fx.creates_edges.push_back({a.label, LoopKind::kNonLoop});
      break;
    case ActionKind::kDelEdge:
      fx.deletes_edges.push_back({p.edges()[a.edge_idx].label,
                                  PatternEdgeLoopKind(p.edges()[a.edge_idx])});
      break;
    case ActionKind::kDelNode: {
      fx.deletes_node_labels.push_back(p.nodes()[a.var].label);
      // Node removal cascades incident edges — unless the pattern proves
      // the node is isolated (junk-node cleanup rules).
      bool isolated = false;
      for (const auto& nac : p.nacs())
        if (nac.kind == NacKind::kNoIncident && nac.src_var == a.var)
          isolated = true;
      if (!isolated) fx.deletes_edges.push_back({0, LoopKind::kAny});
      break;
    }
    case ActionKind::kUpdNode:
      if (a.label != 0) {
        fx.creates_node_labels.push_back(a.label);
        fx.deletes_node_labels.push_back(p.nodes()[a.var].label);
      }
      // Attribute updates can enable/disable predicates of other rules;
      // modeled as creating the node label (conservative re-match trigger).
      if (a.attr != 0) fx.creates_node_labels.push_back(p.nodes()[a.var].label);
      break;
    case ActionKind::kUpdEdge:
      fx.creates_edges.push_back({a.label,
                                  PatternEdgeLoopKind(p.edges()[a.edge_idx])});
      fx.deletes_edges.push_back({p.edges()[a.edge_idx].label,
                                  PatternEdgeLoopKind(p.edges()[a.edge_idx])});
      break;
    case ActionKind::kMerge:
      // Merging re-homes edges: conservatively it can create an edge of any
      // label, and deletes one node of the merged label.
      fx.creates_edges.push_back({0, LoopKind::kAny});
      fx.deletes_node_labels.push_back(p.nodes()[a.var].label);
      break;
  }
  return fx;
}

bool LabelOverlap(SymbolId a, SymbolId b) {
  return a == 0 || b == 0 || a == b;
}

// Does the rule's positive pattern mention this node/edge label?
bool PatternUsesNodeLabel(const Pattern& p, SymbolId label) {
  for (const auto& n : p.nodes())
    if (LabelOverlap(n.label, label)) return true;
  return false;
}

bool PatternUsesEdgeLabel(const Pattern& p, SymbolId label) {
  for (const auto& e : p.edges())
    if (LabelOverlap(e.label, label)) return true;
  return false;
}

// Can applying `deleter` enable `nac` (a NAC of an ADD rule) by deleting an
// edge shaped like `created` (the edge the ADD rule creates)? Refinements
// that keep the analysis conservative but kill the common false positives:
//  - the deleted pattern edge must overlap the created edge in label and
//    loop-shape (a self-loop deleter never removes a non-loop addition);
//  - if the deleter's own pattern GUARANTEES a surviving sibling edge that
//    keeps the NAC false (e.g. "two capitals, delete one" always leaves a
//    capital), the deletion cannot enable the NAC;
//  - MERGE strictly decreases the node count, so an (add, merge) pair
//    cannot oscillate forever and is not reported.
bool DeletionCanEnableNac(const Rule& deleter, const Nac& nac,
                          const EdgeEffect& created) {
  const RepairAction& a = deleter.action();
  const Pattern& p = deleter.pattern();
  switch (a.kind) {
    case ActionKind::kDelEdge:
    case ActionKind::kUpdEdge: {
      const PatternEdge& d = p.edges()[a.edge_idx];
      if (!LabelOverlap(d.label, created.label)) return false;
      if (!LoopCompatible(PatternEdgeLoopKind(d), created.loop)) return false;
      // Sibling survival: another pattern edge whose image is guaranteed to
      // keep the NAC blocked after the deletion.
      for (size_t k = 0; k < p.edges().size(); ++k) {
        if (k == a.edge_idx) continue;
        const PatternEdge& e = p.edges()[k];
        // The sibling only guarantees blockage if its label is concrete and
        // the NAC forbids that label (or any label).
        if (e.label == 0) continue;
        if (nac.label != 0 && e.label != nac.label) continue;
        bool same_src = e.src == d.src, same_dst = e.dst == d.dst;
        switch (nac.kind) {
          case NacKind::kNoInEdge:
            if (same_dst) return false;
            break;
          case NacKind::kNoOutEdge:
            if (same_src) return false;
            break;
          case NacKind::kNoEdge:
            if (same_src && same_dst) return false;
            break;
          case NacKind::kNoIncident:
            if (same_src || same_dst || e.src == d.dst || e.dst == d.src)
              return false;
            break;
        }
      }
      return true;
    }
    case ActionKind::kDelNode: {
      // Cascaded incident-edge deletion: conservative, unless the pattern
      // proves the node isolated.
      for (const auto& n : p.nacs())
        if (n.kind == NacKind::kNoIncident && n.src_var == a.var)
          return false;
      return true;
    }
    case ActionKind::kMerge:
    case ActionKind::kAddEdge:
    case ActionKind::kAddNode:
    case ActionKind::kUpdNode:
      return false;
  }
  return false;
}

// Does the rule have a NAC that a deletion with this label could enable?
bool NacBlockableByEdgeLabel(const Pattern& p, SymbolId label) {
  for (const auto& nac : p.nacs()) {
    switch (nac.kind) {
      case NacKind::kNoEdge:
      case NacKind::kNoOutEdge:
      case NacKind::kNoInEdge:
        if (LabelOverlap(nac.label, label)) return true;
        break;
      case NacKind::kNoIncident:
        return true;  // any edge deletion can empty a neighborhood
    }
  }
  return false;
}

}  // namespace

TriggerGraph TriggerGraph::Build(const RuleSet& rules,
                                 const Vocabulary& vocab) {
  (void)vocab;
  TriggerGraph tg;
  tg.n_ = rules.size();
  tg.is_creator_.assign(rules.size(), false);

  std::vector<Effects> fx;
  fx.reserve(rules.size());
  for (const auto& r : rules.rules()) fx.push_back(ActionEffects(r));

  for (RuleId i = 0; i < rules.size(); ++i) {
    const Rule& ri = rules[i];
    tg.is_creator_[i] = ri.action().kind == ActionKind::kAddNode;
    if (ri.action().kind == ActionKind::kUpdNode && ri.action().label != 0)
      tg.node_relabels_.push_back(
          {ri.pattern().nodes()[ri.action().var].label, ri.action().label});
    if (ri.action().kind == ActionKind::kUpdEdge)
      tg.edge_relabels_.push_back(
          {ri.pattern().edges()[ri.action().edge_idx].label,
           ri.action().label});

    for (RuleId j = 0; j < rules.size(); ++j) {
      const Rule& rj = rules[j];
      // i triggers j: i creates something j's positive pattern uses, or i
      // deletes something a NAC of j forbids.
      bool trig = false;
      std::string reason;
      for (SymbolId l : fx[i].creates_node_labels) {
        if (PatternUsesNodeLabel(rj.pattern(), l)) {
          trig = true;
          reason = "creates node label used by pattern";
          break;
        }
      }
      if (!trig) {
        for (const EdgeEffect& ef : fx[i].creates_edges) {
          if (PatternUsesEdgeLabel(rj.pattern(), ef.label)) {
            trig = true;
            reason = "creates edge label used by pattern";
            break;
          }
        }
      }
      if (!trig) {
        for (const EdgeEffect& ef : fx[i].deletes_edges) {
          if (NacBlockableByEdgeLabel(rj.pattern(), ef.label)) {
            trig = true;
            reason = "deletes edge label that can enable a NAC";
            break;
          }
        }
      }
      if (trig) tg.triggers_.push_back({i, j, reason});

      // Contradiction: i adds an edge that j can delete in a way that
      // re-enables one of i's NACs — the oscillation signature.
      bool contradiction = false;
      for (const EdgeEffect& ci : fx[i].creates_edges) {
        for (const Nac& nac : ri.pattern().nacs()) {
          if (nac.kind == NacKind::kNoIncident) {
            // blockable by any edge; fall through to the deleter check
          } else if (nac.label != 0 && ci.label != 0 &&
                     nac.label != ci.label) {
            continue;  // deleting i's edge can't touch this NAC
          }
          if (DeletionCanEnableNac(rj, nac, ci)) {
            contradiction = true;
            break;
          }
        }
        if (contradiction) break;
      }
      if (contradiction) {
        tg.contradictions_.push_back(
            {i, j,
             StrFormat("rule %s adds an edge that rule %s deletes",
                       ri.name().c_str(), rj.name().c_str())});
      }
    }
  }
  return tg;
}

std::vector<RuleId> TriggerGraph::CreationCycle() const {
  // Restrict the trigger graph to creator (ADD_NODE) rules and find a cycle
  // with a colored DFS.
  std::vector<std::vector<RuleId>> adj(n_);
  for (const auto& t : triggers_)
    if (is_creator_[t.from] && is_creator_[t.to])
      adj[t.from].push_back(t.to);

  std::vector<int> color(n_, 0);  // 0=white 1=gray 2=black
  std::vector<RuleId> stack;
  std::vector<RuleId> cycle;

  std::function<bool(RuleId)> dfs = [&](RuleId u) -> bool {
    color[u] = 1;
    stack.push_back(u);
    for (RuleId v : adj[u]) {
      if (color[v] == 1) {
        // found a cycle: extract it from the stack
        auto it = std::find(stack.begin(), stack.end(), v);
        cycle.assign(it, stack.end());
        return true;
      }
      if (color[v] == 0 && dfs(v)) return true;
    }
    color[u] = 2;
    stack.pop_back();
    return false;
  };
  for (RuleId r = 0; r < n_; ++r)
    if (is_creator_[r] && color[r] == 0 && dfs(r)) return cycle;
  return {};
}

bool TriggerGraph::HasCreationCycle() const { return !CreationCycle().empty(); }

bool TriggerGraph::HasRelabelCycle() const {
  // Node-relabel label graph: an edge old->new per UPD_NODE LABEL rule
  // (old==0 means wildcard source: conservatively cyclic if any other
  // relabel exists targeting anything).
  auto has_cycle = [](const std::vector<std::pair<SymbolId, SymbolId>>& rel) {
    std::map<SymbolId, std::set<SymbolId>> adj;
    std::set<SymbolId> labels;
    for (const auto& [from, to] : rel) {
      adj[from].insert(to);
      labels.insert(from);
      labels.insert(to);
    }
    // wildcard source: treat as edge from EVERY label.
    if (adj.count(0)) {
      for (SymbolId l : labels)
        if (l != 0)
          for (SymbolId t : adj[0]) adj[l].insert(t);
    }
    std::map<SymbolId, int> color;
    std::function<bool(SymbolId)> dfs = [&](SymbolId u) -> bool {
      color[u] = 1;
      for (SymbolId v : adj[u]) {
        if (color[v] == 1) return true;
        if (color[v] == 0 && dfs(v)) return true;
      }
      color[u] = 2;
      return false;
    };
    for (SymbolId l : labels)
      if (color[l] == 0 && dfs(l)) return true;
    return false;
  };
  return has_cycle(node_relabels_) || has_cycle(edge_relabels_);
}

}  // namespace grepair
