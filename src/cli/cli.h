// The grepair command-line tool, as a testable library function.
//
//   grepair gen <kg|social|citation> --out g.tsv [--scale N] [--rate R]
//           [--seed S] [--rules-out r.grr]
//   grepair stats  <graph.tsv>
//   grepair check  <rules.grr>
//   grepair detect <graph.tsv> <rules.grr>
//   grepair repair <graph.tsv> <rules.grr> [--strategy greedy|naive|batch|
//           exact] [--out repaired.tsv]
//   grepair mine   <graph.tsv> [--min-support X]
#ifndef GREPAIR_CLI_CLI_H_
#define GREPAIR_CLI_CLI_H_

#include <string>
#include <vector>

namespace grepair {

/// Runs one CLI invocation; `args` excludes the program name. Output goes
/// to `out` (stdout text). Returns the process exit code (0 = success).
int RunCli(const std::vector<std::string>& args, std::string* out);

}  // namespace grepair

#endif  // GREPAIR_CLI_CLI_H_
