#include "obs/build_info.h"

#include "obs/build_info_gen.h"
#include "obs/metrics.h"

namespace grepair {
namespace obs {

const char* BuildGitSha() { return GREPAIR_BUILD_GIT_SHA; }
const char* BuildType() { return GREPAIR_BUILD_TYPE; }
const char* BuildCompiler() { return GREPAIR_BUILD_COMPILER; }

std::string BuildInfoLine() {
  return std::string("grepair ") + BuildGitSha() + " (" + BuildType() + ", " +
         BuildCompiler() + ")";
}

std::string BuildInfoJsonFields() {
  return std::string("\"git_sha\":\"") + BuildGitSha() +
         "\",\"build_type\":\"" + BuildType() + "\",\"compiler\":\"" +
         BuildCompiler() + "\"";
}

void RegisterBuildInfoMetric(MetricsRegistry* registry) {
  MetricsRegistry& reg =
      registry != nullptr ? *registry : MetricsRegistry::Global();
  reg.GetGauge("grepair_build_info",
               "Build provenance; value is always 1, the labels carry it.",
               {{"sha", BuildGitSha()},
                {"build", BuildType()},
                {"compiler", BuildCompiler()}})
      ->Set(1);
}

}  // namespace obs
}  // namespace grepair
