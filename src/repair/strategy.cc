#include "repair/strategy.h"

namespace grepair {

std::string_view RepairStrategyName(RepairStrategy s) {
  switch (s) {
    case RepairStrategy::kNaive: return "naive";
    case RepairStrategy::kGreedy: return "greedy";
    case RepairStrategy::kBatch: return "batch";
    case RepairStrategy::kExact: return "exact";
  }
  return "?";
}

}  // namespace grepair
