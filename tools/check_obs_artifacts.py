#!/usr/bin/env python3
"""Validates the observability artifacts a traced serve session produces.

Usage: check_obs_artifacts.py <trace.json> <metrics.prom>

- trace.json must be a Chrome trace-event JSON array (the format Perfetto
  and chrome://tracing load): every event carries name/cat/ph/pid/tid/ts/dur,
  ph is "X" (complete events), and ts/dur are non-negative numbers.
- metrics.prom must be Prometheus text exposition 0.0.4: HELP/TYPE comment
  pairs, sample lines `name[{labels}] value`, legal metric names, histogram
  families closing with a `+Inf` bucket and `_sum`/`_count`.

Exit 0 when both parse; nonzero with a diagnostic otherwise. CI runs this
on the bench-smoke artifacts so a formatting regression fails the push that
introduced it, not the person who later tries to load the trace.
"""

import json
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# name{labels} value  |  name value   (label values may contain anything
# except an unescaped quote; the value must parse as a float)
SAMPLE = re.compile(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})? (\S+)$')


def fail(msg):
    print(f"check_obs_artifacts: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path) as f:
        events = json.load(f)
    if not isinstance(events, list):
        fail(f"{path}: top level is not a JSON array")
    if not events:
        fail(f"{path}: no events recorded (was tracing enabled?)")
    for i, e in enumerate(events):
        for key in ("name", "cat", "ph", "pid", "tid", "ts", "dur"):
            if key not in e:
                fail(f"{path}: event {i} missing '{key}': {e}")
        if e["ph"] != "X":
            fail(f"{path}: event {i} has ph={e['ph']!r}, want 'X'")
        if not (isinstance(e["ts"], (int, float)) and e["ts"] >= 0):
            fail(f"{path}: event {i} bad ts: {e['ts']!r}")
        if not (isinstance(e["dur"], (int, float)) and e["dur"] >= 0):
            fail(f"{path}: event {i} bad dur: {e['dur']!r}")
    names = sorted({e["name"] for e in events})
    print(f"{path}: OK ({len(events)} events, spans: {', '.join(names)})")


def check_exposition(path):
    families = {}  # name -> type
    samples = 0
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                fail(f"{path}:{lineno}: blank line in exposition")
            if line.startswith("#"):
                parts = line.split(" ", 3)
                if len(parts) < 4 or parts[1] not in ("HELP", "TYPE"):
                    fail(f"{path}:{lineno}: bad comment line: {line!r}")
                if not METRIC_NAME.match(parts[2]):
                    fail(f"{path}:{lineno}: bad metric name: {parts[2]!r}")
                if parts[1] == "TYPE":
                    if parts[3] not in ("counter", "gauge", "histogram"):
                        fail(f"{path}:{lineno}: bad type: {parts[3]!r}")
                    families[parts[2]] = parts[3]
                continue
            m = SAMPLE.match(line)
            if not m:
                fail(f"{path}:{lineno}: bad sample line: {line!r}")
            try:
                float(m.group(3))
            except ValueError:
                fail(f"{path}:{lineno}: bad sample value: {m.group(3)!r}")
            samples += 1
    if not families:
        fail(f"{path}: no metric families")
    # Histogram families must close with +Inf/_sum/_count (the le label
    # rides last in a child's label block, after any instrument labels).
    text = open(path).read()
    for name, kind in families.items():
        if kind != "histogram":
            continue
        if not re.search(re.escape(name) + r'_bucket\{[^}]*le="\+Inf"\}',
                         text):
            fail(f"{path}: histogram {name} missing a +Inf bucket")
        for suffix in ("_sum", "_count"):
            if name + suffix not in text:
                fail(f"{path}: histogram {name} missing {suffix}")
    print(f"{path}: OK ({len(families)} families, {samples} samples)")
    return len(families)


def main():
    if len(sys.argv) != 3:
        fail("usage: check_obs_artifacts.py <trace.json> <metrics.prom>")
    check_trace(sys.argv[1])
    n = check_exposition(sys.argv[2])
    # The acceptance floor: a served workload exposes at least 12
    # instruments across the serve/snapshot/pool/matcher layers.
    if n < 12:
        fail(f"only {n} metric families; expected at least 12")
    print("check_obs_artifacts: PASS")


if __name__ == "__main__":
    main()
