// Keeping a live graph clean: repair once, then absorb a stream of edits
// with delta repair — each batch is detected and fixed at cost proportional
// to the batch, not the graph. Also demonstrates the provenance report.
//
//   $ ./build/examples/dynamic_repair
#include <cstdio>

#include "eval/experiment.h"
#include "repair/explain.h"
#include "util/rng.h"

using namespace grepair;

int main() {
  KgOptions gopt;
  gopt.num_persons = 2000;
  gopt.num_cities = 200;
  gopt.num_countries = 20;
  gopt.num_orgs = 150;
  InjectOptions iopt;
  iopt.rate = 0.05;

  auto bundle = MakeKgBundle(gopt, iopt);
  if (!bundle.ok()) {
    std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
    return 1;
  }
  Graph& g = bundle.value().graph;
  const RuleSet& rules = bundle.value().rules;
  auto vocab = bundle.value().vocab;

  // Initial full repair, with the audit report.
  RepairEngine engine;
  auto initial = engine.Run(&g, rules);
  if (!initial.ok()) return 1;
  std::puts("=== initial repair report (first 8 fixes) ===");
  std::fputs(ExplainRepair(g, rules, initial.value(), 8).c_str(), stdout);

  // Simulated update stream: 5 batches of dirty writes.
  std::puts("\n=== update stream ===");
  Rng rng(99);
  SymbolId person = vocab->Label("Person");
  SymbolId knows = vocab->Label("knows");
  std::vector<NodeId> persons(g.NodesWithLabel(person).begin(),
                              g.NodesWithLabel(person).end());
  for (int batch = 0; batch < 5; ++batch) {
    size_t mark = g.JournalSize();
    for (int k = 0; k < 8; ++k) {
      NodeId a = persons[rng.PickIndex(persons)];
      NodeId b = persons[rng.PickIndex(persons)];
      if (g.NodeAlive(a) && g.NodeAlive(b) && a != b &&
          !g.HasEdge(a, b, knows))
        (void)g.AddEdge(a, b, knows);  // one-directional: dirty
    }
    auto res = engine.RunDelta(&g, rules, mark);
    if (!res.ok()) return 1;
    std::printf("batch %d: %zu new violations, %zu fixes, %.2f ms "
                "(%zu matcher expansions)\n",
                batch, res.value().initial_violations,
                res.value().applied.size(), res.value().total_ms,
                res.value().matcher_expansions);
  }

  std::printf("\nfinal check: %zu violations in the whole graph\n",
              CountViolations(g, rules));
  return 0;
}
