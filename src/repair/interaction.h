// Fix-interaction analysis: which candidate fixes can be applied together in
// one batch without invalidating each other. Two fixes conflict when the
// write set of one intersects the read-or-write set of the other (scopes are
// computed conservatively against the live graph).
#ifndef GREPAIR_REPAIR_INTERACTION_H_
#define GREPAIR_REPAIR_INTERACTION_H_

#include <vector>

#include "graph/graph.h"
#include "grr/rule.h"
#include "match/matcher.h"

namespace grepair {

/// The element footprint of a fix.
struct FixScope {
  std::vector<NodeId> read_nodes;   ///< matched nodes
  std::vector<EdgeId> read_edges;   ///< matched edges
  std::vector<NodeId> write_nodes;  ///< nodes mutated/deleted/merged
  std::vector<EdgeId> write_edges;  ///< edges mutated/deleted (incl. cascades)
};

/// Computes the scope of applying `rule` at `match` on the current graph.
/// Node deletions/merges include every incident edge in the write set and
/// the neighbor nodes in the read set (their adjacency changes).
FixScope ComputeScope(const GraphView& g, const Rule& rule,
                      const Match& match);

/// True when the two fixes cannot be batched (write/read+write overlap).
bool ScopesConflict(const FixScope& a, const FixScope& b);

/// Greedy maximum-weight-ish independent set: fixes are taken in the given
/// (cost-sorted) order, skipping any that conflicts with one already taken.
/// Returns indices into `scopes`.
std::vector<size_t> SelectIndependent(const std::vector<FixScope>& scopes);

}  // namespace grepair

#endif  // GREPAIR_REPAIR_INTERACTION_H_
