#include "serve/publisher.h"

#include <utility>

namespace grepair {
namespace serve {

Generation* SnapshotPublisher::Writable() {
  std::lock_guard<std::mutex> lock(mu_);
  const int w = enabled_ ? (published_ < 0 ? 0 : 1 - published_) : 0;
  if (slots_[w] == nullptr) {
    slots_[w] = std::make_shared<Generation>();
    slots_[w]->epoch = epoch_;
  } else if (slots_[w]->pins.load(std::memory_order_acquire) != 0) {
    // Retired but still pinned: abandon it to its readers (the shared_ptr
    // they hold keeps it alive) and start the next generation fresh. The
    // pin count of an unpublished slot only decreases, so a zero read here
    // is stable for the writer.
    slots_[w] = std::make_shared<Generation>();
    slots_[w]->epoch = epoch_;
    ++abandoned_;
  } else if (slots_[w]->epoch != epoch_) {
    // The backing graph was swapped since this store was built; its
    // watermark is meaningless against the new delta log. Drop the store
    // so the caller rebuilds from the current graph.
    slots_[w]->mono.reset();
    slots_[w]->sharded.reset();
    slots_[w]->backlog.clear();
    slots_[w]->watermark = 0;
    slots_[w]->epoch = epoch_;
  }
  return slots_[w].get();
}

void SnapshotPublisher::Publish(uint64_t batch, std::vector<Violation> backlog) {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(mu_);
  const int w = published_ < 0 ? 0 : 1 - published_;
  if (slots_[w] == nullptr || !slots_[w]->has_store()) return;
  slots_[w]->backlog = std::move(backlog);
  slots_[w]->batch = batch;
  slots_[w]->generation = next_generation_++;
  published_ = w;
}

ReadLease SnapshotPublisher::Pin() const {
  if (!enabled_) return ReadLease();
  std::lock_guard<std::mutex> lock(mu_);
  if (published_ < 0) return ReadLease();
  std::shared_ptr<Generation> gen = slots_[published_];
  // Relaxed is enough for the increment: the mutex orders it against the
  // writer's slot flip, and only the DECREMENT needs to carry the reads.
  gen->pins.fetch_add(1, std::memory_order_relaxed);
  return ReadLease(std::shared_ptr<const Generation>(std::move(gen)));
}

void SnapshotPublisher::BeginNewEpoch() {
  std::lock_guard<std::mutex> lock(mu_);
  ++epoch_;
}

uint64_t SnapshotPublisher::CurrentGeneration() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_ < 0 ? 0 : slots_[published_]->generation;
}

size_t SnapshotPublisher::MemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& s : slots_)
    if (s != nullptr) total += s->MemoryBytes();
  return total;
}

}  // namespace serve
}  // namespace grepair
