// Experiment orchestration shared by the benchmarks and examples: build a
// dataset bundle (clean graph -> inject errors -> rules -> ground truth),
// run a named method on a fresh clone, evaluate quality.
#ifndef GREPAIR_EVAL_EXPERIMENT_H_
#define GREPAIR_EVAL_EXPERIMENT_H_

#include <string>

#include "graph/error_injector.h"
#include "grr/rule.h"
#include "eval/metrics.h"
#include "repair/engine.h"

namespace grepair {

/// A ready-to-repair workload: the corrupted graph, its rules, and the
/// injected ground truth.
struct DatasetBundle {
  std::string name;
  VocabularyPtr vocab;
  Graph graph;          ///< corrupted; journal reset at the corrupted state
  RuleSet rules;
  InjectReport truth;
  size_t clean_nodes = 0;  ///< pre-injection statistics, for tables
  size_t clean_edges = 0;

  DatasetBundle() : vocab(MakeVocabulary()), graph(vocab) {}
};

/// Bundle builders for the three shipped domains.
Result<DatasetBundle> MakeKgBundle(const KgOptions& gopt,
                                   const InjectOptions& iopt);
Result<DatasetBundle> MakeSocialBundle(const SocialOptions& gopt,
                                       const InjectOptions& iopt);
Result<DatasetBundle> MakeCitationBundle(const CitationOptions& gopt,
                                         const InjectOptions& iopt);

/// The outcome of running one method on one bundle.
struct MethodOutcome {
  std::string method;
  RepairResult repair;
  QualityMetrics quality;
};

/// Known method names: "detect_only", "naive", "greedy", "batch", "exact",
/// "cfd". The method runs on a CLONE of bundle.graph; the bundle can be
/// reused across methods.
Result<MethodOutcome> RunMethod(const DatasetBundle& bundle,
                                const std::string& method,
                                const RepairOptions& base_options = {});

/// All standard method names, in presentation order.
const std::vector<std::string>& StandardMethods();

}  // namespace grepair

#endif  // GREPAIR_EVAL_EXPERIMENT_H_
