// Graph patterns: the MATCH/WHERE half of a graph-repairing rule. A pattern
// is a small (possibly disconnected) graph of node variables and edge
// variables plus attribute predicates and negative conditions (NACs).
#ifndef GREPAIR_MATCH_PATTERN_H_
#define GREPAIR_MATCH_PATTERN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/vocabulary.h"
#include "util/status.h"

namespace grepair {

/// Index of a node variable / edge variable within a pattern.
using VarId = uint32_t;
inline constexpr VarId kNoVar = UINT32_MAX;

/// A node variable: matches alive nodes whose label equals `label`
/// (label == 0 matches any label).
struct PatternNode {
  SymbolId label = 0;
  std::string var_name;  ///< DSL surface name, for diagnostics
};

/// An edge variable: matches alive edges from nodes[src] to nodes[dst] whose
/// label equals `label` (0 = any).
struct PatternEdge {
  VarId src = kNoVar;
  VarId dst = kNoVar;
  SymbolId label = 0;
};

/// Comparison operators for attribute predicates. Values that both parse as
/// numbers compare numerically, otherwise lexicographically. kAbsent /
/// kPresent are unary (rhs ignored) and test attribute existence.
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe, kAbsent, kPresent };

std::string_view CmpOpName(CmpOp op);

/// One side of an attribute predicate: `node_var.attr`, `edge_var.attr`, or
/// a constant. For edge operands, `var` indexes the pattern's edge list.
struct AttrOperand {
  VarId var = kNoVar;   ///< kNoVar → constant operand
  SymbolId attr = 0;    ///< attribute name when var != kNoVar
  SymbolId constant = 0;///< interned value when var == kNoVar
  bool is_edge = false; ///< var refers to a pattern edge, not a node var

  static AttrOperand VarAttr(VarId v, SymbolId attr) {
    AttrOperand o;
    o.var = v;
    o.attr = attr;
    return o;
  }
  static AttrOperand EdgeAttr(size_t edge_idx, SymbolId attr) {
    AttrOperand o;
    o.var = static_cast<VarId>(edge_idx);
    o.attr = attr;
    o.is_edge = true;
    return o;
  }
  static AttrOperand Const(SymbolId value) {
    AttrOperand o;
    o.constant = value;
    return o;
  }
};

/// `lhs op rhs` over a (partial) node binding. A predicate involving an
/// absent attribute is false (errors don't silently satisfy conditions),
/// except `kNe` which is true when exactly one side is absent.
struct AttrPredicate {
  AttrOperand lhs;
  CmpOp op;
  AttrOperand rhs;
};

/// Negative application conditions — what must NOT exist around the match.
enum class NacKind : uint8_t {
  kNoEdge,      ///< no edge src_var -[label]-> dst_var (label 0 = any)
  kNoOutEdge,   ///< src_var has no outgoing edge with label (to anywhere)
  kNoInEdge,    ///< dst_var has no incoming edge with label (from anywhere)
  kNoIncident,  ///< src_var has no incident edges at all
};

struct Nac {
  NacKind kind;
  VarId src_var = kNoVar;
  VarId dst_var = kNoVar;
  SymbolId label = 0;
};

/// The pattern itself. Node matching is injective (distinct variables bind
/// distinct nodes), and edge-variable matching is injective over edge ids.
class Pattern {
 public:
  /// Adds a node variable; returns its VarId.
  VarId AddNode(SymbolId label, std::string var_name = "");
  /// Adds an edge variable between existing node variables.
  Result<size_t> AddEdge(VarId src, VarId dst, SymbolId label);
  void AddPredicate(AttrPredicate p) { predicates_.push_back(p); }
  void AddNac(Nac n) { nacs_.push_back(n); }

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges() const { return edges_.size(); }
  const std::vector<PatternNode>& nodes() const { return nodes_; }
  const std::vector<PatternEdge>& edges() const { return edges_; }
  const std::vector<AttrPredicate>& predicates() const { return predicates_; }
  const std::vector<Nac>& nacs() const { return nacs_; }

  /// Structural sanity: >= 1 node, edge endpoints valid, NAC vars valid.
  Status Validate() const;

  /// Set of labels mentioned positively (nodes + edges); 0 excluded.
  std::vector<SymbolId> PositiveLabels() const;
  /// Labels mentioned by NACs (0 = wildcard is represented as 0).
  std::vector<SymbolId> NacLabels() const;

  /// Human-readable rendering (uses vocab for names).
  std::string ToString(const Vocabulary& vocab) const;

 private:
  std::vector<PatternNode> nodes_;
  std::vector<PatternEdge> edges_;
  std::vector<AttrPredicate> predicates_;
  std::vector<Nac> nacs_;
};

}  // namespace grepair

#endif  // GREPAIR_MATCH_PATTERN_H_
