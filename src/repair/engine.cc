#include "repair/engine.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "graph/snapshot.h"
#include "match/incremental.h"
#include "match/plan.h"
#include "parallel/parallel_detector.h"
#include "parallel/thread_pool.h"
#include "repair/interaction.h"
#include "util/rng.h"
#include "util/timer.h"

namespace grepair {

namespace {

// Adds every match of every rule to the store, costed for fix selection.
// A non-null pool with >1 workers fans the matching out (bit-identical
// results; see ParallelDetector); costing and store insertion stay on the
// calling thread either way.
size_t DetectInto(const GraphView& g, const RuleSet& rules,
                  ViolationStore* store,
                  const CostModel& model, SymbolId conf_attr,
                  size_t* expansions, ThreadPool* pool = nullptr,
                  const GraphView* snapshot = nullptr) {
  // A caller-owned snapshot view of g's current state (monolithic or
  // sharded) replaces g on every read path below (bit-identical by
  // contract) — repeated passes over an unchanged graph then skip the
  // per-pass snapshot build entirely.
  const GraphView& src = snapshot != nullptr ? *snapshot : g;
  if (pool != nullptr && pool->NumThreads() > 1) {
    // One immutable read-optimized snapshot per detection pass, shared
    // read-only by every pool worker (cache-friendly CSR reads, no live
    // hash indexes on the hot path). Reads over the snapshot are
    // bit-identical to reads over `g` (tests/test_snapshot.cc), so the
    // store receives the exact sequential seeding either way.
    std::unique_ptr<GraphSnapshot> built;
    const GraphView& view = SnapshotForPass(src, &built);
    // Compile each rule's pattern once for the pass; every worker task of a
    // rule then replays its plan instead of re-interpreting the pattern.
    std::vector<const Pattern*> patterns;
    patterns.reserve(rules.size());
    for (RuleId r = 0; r < rules.size(); ++r)
      patterns.push_back(&rules[r].pattern());
    const std::vector<MatchPlan> plans = CompilePlans(patterns, view);
    std::vector<const MatchPlan*> plan_ptrs;
    plan_ptrs.reserve(plans.size());
    for (const MatchPlan& p : plans) plan_ptrs.push_back(&p);
    ParallelDetector detector(pool);
    MatchStats st = detector.Detect(
        view, rules,
        [&](RuleId r, const Match& m) {
          double cost = FixCost(view, rules[r], m, model, conf_attr);
          store->Add(r, m, cost);
        },
        plan_ptrs.data());
    if (expansions) *expansions += st.expansions;
    return store->Size();
  }
  for (RuleId r = 0; r < rules.size(); ++r) {
    const Rule& rule = rules[r];
    const MatchPlan plan = MatchPlan::Compile(rule.pattern(), src);
    Matcher matcher(src, rule.pattern(), &plan);
    MatchOptions opts;
    MatchStats st = matcher.FindAll(opts, [&](const Match& m) {
      double cost = FixCost(src, rule, m, model, conf_attr);
      store->Add(r, m, cost);
      return true;
    });
    if (expansions) *expansions += st.expansions;
  }
  return store->Size();
}

// Lazily creates the detection pool for the configured thread count
// (nullptr = stay sequential).
std::unique_ptr<ThreadPool> MakeDetectPool(size_t num_threads) {
  if (num_threads == 1) return nullptr;
  return std::make_unique<ThreadPool>(num_threads);
}

// CountViolations against an already-running pool (the strategy runners
// reuse their detection pool instead of spawning a fresh one per count).
size_t CountWith(const GraphView& g, const RuleSet& rules,
                 ThreadPool* pool) {
  CostModel model;
  ViolationStore store;
  return DetectInto(g, rules, &store, model, /*conf_attr=*/0, nullptr, pool);
}

std::vector<EditEntry> JournalSlice(const Graph& g, size_t from) {
  return std::vector<EditEntry>(g.Journal().begin() + from, g.Journal().end());
}

}  // namespace

// Incremental re-detection: only around the delta.
void DetectDelta(const GraphView& g, const RuleSet& rules,
                 const std::vector<EditEntry>& delta, ViolationStore* store,
                 const CostModel& model, SymbolId conf_attr,
                 size_t* expansions) {
  for (RuleId r = 0; r < rules.size(); ++r) {
    const Rule& rule = rules[r];
    DeltaMatcher dm(g, rule.pattern());
    MatchStats st = dm.FindDelta(delta, [&](const Match& m) {
      double cost = FixCost(g, rule, m, model, conf_attr);
      store->Add(r, m, cost);
      return true;
    });
    if (expansions) *expansions += st.expansions;
  }
}

size_t DetectAll(const GraphView& g, const RuleSet& rules,
                 ViolationStore* store,
                 size_t* expansions, size_t num_threads,
                 const GraphView* snapshot) {
  CostModel model;
  std::unique_ptr<ThreadPool> pool = MakeDetectPool(num_threads);
  return DetectInto(g, rules, store, model, /*conf_attr=*/0, expansions,
                    pool.get(), snapshot);
}

size_t CountViolations(const GraphView& g, const RuleSet& rules,
                       size_t num_threads, const GraphView* snapshot) {
  ViolationStore store;
  return DetectAll(g, rules, &store, nullptr, num_threads, snapshot);
}

RepairEngine::RepairEngine(RepairOptions options)
    : options_(std::move(options)) {}

SymbolId RepairEngine::ConfAttr(const Graph& g) const {
  if (options_.confidence_attr.empty()) return 0;
  // Lookup-only, never Intern: ConfAttr feeds detection, which may run on
  // pool threads reading the vocabulary concurrently. An attr name nothing
  // ever interned cannot occur on any edge, so "absent" means "unweighted".
  SymbolId id;
  if (!g.vocab()->lookup_only().Attr(options_.confidence_attr, &id)) return 0;
  return id;
}

Result<RepairResult> RepairEngine::Run(Graph* g, const RuleSet& rules) const {
  if (g == nullptr) return Status::InvalidArgument("null graph");
  switch (options_.strategy) {
    case RepairStrategy::kGreedy: return RunGreedy(g, rules);
    case RepairStrategy::kNaive: return RunNaive(g, rules);
    case RepairStrategy::kBatch: return RunBatch(g, rules);
    case RepairStrategy::kExact: return RunExact(g, rules);
  }
  return Status::InvalidArgument("unknown strategy");
}

Result<RepairResult> RepairEngine::RunDelta(Graph* g, const RuleSet& rules,
                                            size_t since_mark) const {
  if (g == nullptr) return Status::InvalidArgument("null graph");
  if (since_mark > g->JournalSize())
    return Status::OutOfRange("RunDelta: mark beyond journal");
  std::vector<EditEntry> delta = JournalSlice(*g, since_mark);
  return RunGreedy(g, rules, &delta);
}

// --------------------------------------------------------------- Greedy

Result<RepairResult> RepairEngine::RunGreedy(
    Graph* g, const RuleSet& rules,
    const std::vector<EditEntry>* seed_delta) const {
  Timer total;
  RepairResult res;
  SymbolId conf = ConfAttr(*g);
  size_t start_mark = g->JournalSize();
  // Lazy: dynamic-mode runs that stay delta-anchored throughout never pay
  // for worker threads they would not use.
  std::unique_ptr<ThreadPool> pool;
  auto detect_pool = [&]() -> ThreadPool* {
    if (pool == nullptr && options_.num_threads != 1)
      pool = MakeDetectPool(options_.num_threads);
    return pool.get();
  };

  ViolationStore store;
  {
    Timer t;
    if (seed_delta == nullptr) {
      res.initial_violations = DetectInto(
          *g, rules, &store, options_.cost_model, conf,
          &res.matcher_expansions, detect_pool());
    } else {
      // Dynamic mode: seed only with violations the delta can have created.
      DetectDelta(*g, rules, *seed_delta, &store, options_.cost_model, conf,
                  &res.matcher_expansions);
      res.initial_violations = store.Size();
    }
    res.detect_ms += t.ElapsedMs();
  }

  std::unordered_set<uint64_t> fingerprints;
  if (options_.detect_oscillation) fingerprints.insert(g->Fingerprint());

  Violation v;
  for (;;) {
    if (res.applied.size() >= options_.max_fixes && !store.Empty()) {
      res.budget_exhausted = true;
      break;
    }
    if (!store.PopBest(&v)) break;
    // Re-verify alternatives against the live graph; choose the cheapest.
    const Rule& rule = rules[v.rule];
    Matcher matcher(*g, rule.pattern());
    const Match* best = nullptr;
    double best_cost = std::numeric_limits<double>::infinity();
    for (const Match& alt : v.alternatives) {
      if (!matcher.Verify(alt)) continue;
      double c = FixCost(*g, rule, alt, options_.cost_model, conf);
      if (c < best_cost) {
        best_cost = c;
        best = &alt;
      }
    }
    if (best == nullptr) continue;  // stale violation

    size_t mark = g->JournalSize();
    auto applied = ApplyFix(g, v.rule, rule, *best);
    if (!applied.ok()) return applied.status();
    res.applied.push_back(applied.value());
    ++res.rounds;

    {
      Timer t;
      if (options_.incremental) {
        std::vector<EditEntry> delta = JournalSlice(*g, mark);
        DetectDelta(*g, rules, delta, &store, options_.cost_model, conf,
                    &res.matcher_expansions);
      } else {
        store.Clear();
        DetectInto(*g, rules, &store, options_.cost_model, conf,
                   &res.matcher_expansions, detect_pool());
      }
      res.detect_ms += t.ElapsedMs();
    }

    if (options_.detect_oscillation) {
      if (!fingerprints.insert(g->Fingerprint()).second) {
        res.oscillation_detected = true;
        break;
      }
    }
  }

  if (seed_delta == nullptr) {
    res.remaining_violations = CountWith(*g, rules, detect_pool());
  } else {
    // Dynamic mode stays O(delta): the store was drained, so anything left
    // is what the budget cut off. Callers wanting a global count run
    // CountViolations themselves.
    res.remaining_violations = store.Size();
  }
  res.repair_cost = g->CostSince(start_mark, options_.cost_model);
  res.total_ms = total.ElapsedMs();
  return res;
}

// ---------------------------------------------------------------- Naive

Result<RepairResult> RepairEngine::RunNaive(Graph* g,
                                            const RuleSet& rules) const {
  Timer total;
  RepairResult res;
  size_t start_mark = g->JournalSize();
  Rng rng(options_.seed);
  std::unique_ptr<ThreadPool> pool = MakeDetectPool(options_.num_threads);

  std::unordered_set<uint64_t> fingerprints;
  if (options_.detect_oscillation) fingerprints.insert(g->Fingerprint());

  bool first_round = true;
  while (res.rounds < options_.max_rounds) {
    ViolationStore store;
    {
      Timer t;
      DetectInto(*g, rules, &store, options_.cost_model, /*conf_attr=*/0,
                 &res.matcher_expansions, pool.get());
      res.detect_ms += t.ElapsedMs();
    }
    if (first_round) {
      res.initial_violations = store.Size();
      first_round = false;
    }
    if (store.Empty()) break;
    ++res.rounds;

    std::vector<Violation> batch = store.Snapshot();
    rng.Shuffle(&batch);  // arbitrary order, seeded for reproducibility
    bool progress = false;
    for (Violation& v : batch) {
      if (res.applied.size() >= options_.max_fixes) {
        res.budget_exhausted = true;
        break;
      }
      const Rule& rule = rules[v.rule];
      Matcher matcher(*g, rule.pattern());
      rng.Shuffle(&v.alternatives);
      const Match* pick = nullptr;
      for (const Match& alt : v.alternatives) {
        if (matcher.Verify(alt)) {
          pick = &alt;
          break;
        }
      }
      if (pick == nullptr) continue;
      auto applied = ApplyFix(g, v.rule, rule, *pick);
      if (!applied.ok()) return applied.status();
      res.applied.push_back(applied.value());
      progress = true;
    }
    if (res.budget_exhausted) break;
    if (options_.detect_oscillation) {
      if (!fingerprints.insert(g->Fingerprint()).second) {
        res.oscillation_detected = true;
        break;
      }
    }
    if (!progress) break;
  }
  if (res.rounds >= options_.max_rounds) res.budget_exhausted = true;

  res.remaining_violations = CountWith(*g, rules, pool.get());
  res.repair_cost = g->CostSince(start_mark, options_.cost_model);
  res.total_ms = total.ElapsedMs();
  return res;
}

// ---------------------------------------------------------------- Batch

Result<RepairResult> RepairEngine::RunBatch(Graph* g,
                                            const RuleSet& rules) const {
  Timer total;
  RepairResult res;
  SymbolId conf = ConfAttr(*g);
  size_t start_mark = g->JournalSize();
  std::unique_ptr<ThreadPool> pool = MakeDetectPool(options_.num_threads);

  ViolationStore store;
  {
    Timer t;
    res.initial_violations =
        DetectInto(*g, rules, &store, options_.cost_model, conf,
                   &res.matcher_expansions, pool.get());
    res.detect_ms += t.ElapsedMs();
  }

  std::unordered_set<uint64_t> fingerprints;
  if (options_.detect_oscillation) fingerprints.insert(g->Fingerprint());

  while (!store.Empty() && res.rounds < options_.max_rounds) {
    ++res.rounds;
    // Drain the store; re-verify; keep the best fix per violation.
    struct Cand {
      RuleId rule;
      Match match;
      double cost;
    };
    std::vector<Cand> cands;
    Violation v;
    while (store.PopBest(&v)) {
      const Rule& rule = rules[v.rule];
      Matcher matcher(*g, rule.pattern());
      const Match* best = nullptr;
      double best_cost = std::numeric_limits<double>::infinity();
      for (const Match& alt : v.alternatives) {
        if (!matcher.Verify(alt)) continue;
        double c = FixCost(*g, rule, alt, options_.cost_model, conf);
        if (c < best_cost) {
          best_cost = c;
          best = &alt;
        }
      }
      if (best) cands.push_back({v.rule, *best, best_cost});
    }
    if (cands.empty()) break;
    std::sort(cands.begin(), cands.end(),
              [](const Cand& a, const Cand& b) { return a.cost < b.cost; });

    // Independent subset by scope analysis (cost order preserved).
    std::vector<FixScope> scopes;
    scopes.reserve(cands.size());
    for (const Cand& c : cands)
      scopes.push_back(ComputeScope(*g, rules[c.rule], c.match));
    std::vector<size_t> chosen = SelectIndependent(scopes);

    size_t round_mark = g->JournalSize();
    for (size_t idx : chosen) {
      if (res.applied.size() >= options_.max_fixes) {
        res.budget_exhausted = true;
        break;
      }
      const Cand& c = cands[idx];
      // Independence guarantees validity, but stay defensive.
      if (!Matcher(*g, rules[c.rule].pattern()).Verify(c.match)) continue;
      auto applied = ApplyFix(g, c.rule, rules[c.rule], c.match);
      if (!applied.ok()) return applied.status();
      res.applied.push_back(applied.value());
    }

    {
      Timer t;
      if (options_.incremental) {
        std::vector<EditEntry> delta = JournalSlice(*g, round_mark);
        DetectDelta(*g, rules, delta, &store, options_.cost_model, conf,
                    &res.matcher_expansions);
        // Unchosen candidates may still be violations; re-add (dedup safe).
        for (size_t i = 0; i < cands.size(); ++i) {
          if (std::find(chosen.begin(), chosen.end(), i) != chosen.end())
            continue;
          store.Add(cands[i].rule, cands[i].match, cands[i].cost);
        }
      } else {
        store.Clear();
        DetectInto(*g, rules, &store, options_.cost_model, conf,
                   &res.matcher_expansions, pool.get());
      }
      res.detect_ms += t.ElapsedMs();
    }

    if (res.budget_exhausted) break;
    if (options_.detect_oscillation) {
      if (!fingerprints.insert(g->Fingerprint()).second) {
        res.oscillation_detected = true;
        break;
      }
    }
  }
  if (res.rounds >= options_.max_rounds) res.budget_exhausted = true;

  res.remaining_violations = CountWith(*g, rules, pool.get());
  res.repair_cost = g->CostSince(start_mark, options_.cost_model);
  res.total_ms = total.ElapsedMs();
  return res;
}

// ---------------------------------------------------------------- Exact
// (Exact detection stays sequential: the DFS re-detects on every expansion
// of a deliberately small graph, where per-call fan-out overhead dominates.)

namespace {

// One step of the optimal sequence: a fix plus the element ids it created
// during exploration, so the replay can remap them.
struct ExactStep {
  RuleId rule;
  Match match;
  std::vector<NodeId> created_nodes;
  std::vector<EdgeId> created_edges;
};

struct ExactSearch {
  Graph* g;
  const RuleSet* rules;
  const RepairOptions* opts;
  SymbolId conf;
  size_t start_mark;

  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<ExactStep> best_seq;
  std::vector<ExactStep> cur_seq;
  std::unordered_map<uint64_t, double> seen;
  size_t expansions = 0;
  bool exhausted = false;

  void Dfs(size_t depth) {
    if (exhausted) return;
    if (++expansions > opts->exact_max_expansions) {
      exhausted = true;
      return;
    }
    double cost = g->CostSince(start_mark, opts->cost_model);
    if (cost >= best_cost) return;
    uint64_t fp = g->Fingerprint();
    auto it = seen.find(fp);
    if (it != seen.end() && it->second <= cost) return;
    seen[fp] = cost;

    ViolationStore store;
    DetectInto(*g, *rules, &store, opts->cost_model, conf, nullptr);
    if (store.Empty()) {
      best_cost = cost;
      best_seq = cur_seq;
      return;
    }
    if (depth >= opts->exact_max_depth) return;

    struct Cand {
      RuleId rule;
      Match match;
      double cost;
    };
    std::vector<Cand> cands;
    for (const Violation& v : store.Snapshot())
      for (const Match& alt : v.alternatives)
        cands.push_back(
            {v.rule, alt,
             FixCost(*g, (*rules)[v.rule], alt, opts->cost_model, conf)});
    std::sort(cands.begin(), cands.end(),
              [](const Cand& a, const Cand& b) { return a.cost < b.cost; });

    for (const Cand& c : cands) {
      size_t mark = g->JournalSize();
      auto applied = ApplyFix(g, c.rule, (*rules)[c.rule], c.match);
      if (!applied.ok()) continue;
      ExactStep step;
      step.rule = c.rule;
      step.match = c.match;
      for (size_t j = mark; j < g->JournalSize(); ++j) {
        const EditEntry& e = g->Journal()[j];
        if (e.kind == EditKind::kAddNode) step.created_nodes.push_back(e.node);
        if (e.kind == EditKind::kAddEdge) step.created_edges.push_back(e.edge);
      }
      cur_seq.push_back(std::move(step));
      Dfs(depth + 1);
      cur_seq.pop_back();
      Status st = g->UndoTo(mark);
      if (!st.ok()) {
        exhausted = true;  // should never happen; fail safe
        return;
      }
      if (exhausted) return;
    }
  }
};

}  // namespace

Result<RepairResult> RepairEngine::RunExact(Graph* g,
                                            const RuleSet& rules) const {
  Timer total;
  RepairResult res;
  SymbolId conf = ConfAttr(*g);
  size_t start_mark = g->JournalSize();

  res.initial_violations = CountViolations(*g, rules);

  ExactSearch search;
  search.g = g;
  search.rules = &rules;
  search.opts = &options_;
  search.conf = conf;
  search.start_mark = start_mark;
  search.Dfs(0);
  res.budget_exhausted = search.exhausted;

  if (search.best_cost == std::numeric_limits<double>::infinity()) {
    // No full repair found within budget; leave the graph untouched.
    res.remaining_violations = CountViolations(*g, rules);
    res.total_ms = total.ElapsedMs();
    return res;
  }

  // Replay the optimal sequence, remapping ids of elements created during
  // exploration (replay allocates fresh ids).
  std::unordered_map<NodeId, NodeId> node_map;
  std::unordered_map<EdgeId, EdgeId> edge_map;
  for (const ExactStep& step : search.best_seq) {
    Match m = step.match;
    for (NodeId& n : m.nodes) {
      auto it = node_map.find(n);
      if (it != node_map.end()) n = it->second;
    }
    for (EdgeId& e : m.edges) {
      auto it = edge_map.find(e);
      if (it != edge_map.end()) e = it->second;
    }
    const Rule& rule = rules[step.rule];
    if (!Matcher(*g, rule.pattern()).Verify(m))
      return Status::Internal("exact replay: match failed to verify");
    size_t mark = g->JournalSize();
    auto applied = ApplyFix(g, step.rule, rule, m);
    if (!applied.ok()) return applied.status();
    // Record created-id remapping in exploration order (both passes create
    // elements in identical order).
    std::vector<NodeId> new_nodes;
    std::vector<EdgeId> new_edges;
    for (size_t j = mark; j < g->JournalSize(); ++j) {
      const EditEntry& e = g->Journal()[j];
      if (e.kind == EditKind::kAddNode) new_nodes.push_back(e.node);
      if (e.kind == EditKind::kAddEdge) new_edges.push_back(e.edge);
    }
    if (new_nodes.size() != step.created_nodes.size() ||
        new_edges.size() != step.created_edges.size())
      return Status::Internal("exact replay: creation mismatch");
    for (size_t i = 0; i < new_nodes.size(); ++i)
      node_map[step.created_nodes[i]] = new_nodes[i];
    for (size_t i = 0; i < new_edges.size(); ++i)
      edge_map[step.created_edges[i]] = new_edges[i];
    res.applied.push_back(applied.value());
  }
  res.rounds = res.applied.size();

  res.remaining_violations = CountViolations(*g, rules);
  res.repair_cost = g->CostSince(start_mark, options_.cost_model);
  res.matcher_expansions = search.expansions;
  res.total_ms = total.ElapsedMs();
  return res;
}

}  // namespace grepair
