// Error injection with exact ground truth. Each injector corrupts a clean
// graph with the paper's three error classes — incomplete, conflicting and
// redundant information — and records, per error, the repair fact a correct
// engine is expected to produce. The evaluation compares applied fixes
// against these facts (see eval/metrics.h).
#ifndef GREPAIR_GRAPH_ERROR_INJECTOR_H_
#define GREPAIR_GRAPH_ERROR_INJECTOR_H_

#include <string>
#include <vector>

#include "graph/error_class.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/status.h"

namespace grepair {

/// The repair a correct engine is expected to produce for one injected error.
enum class FactKind : uint8_t {
  kEdgeAdded,          ///< edge (a)-[label]->(b) must exist afterwards
  kEdgeRemoved,        ///< edge (a)-[label]->(b) must be gone afterwards
  kNodesMerged,        ///< nodes a and b merged (either survivor)
  kNodeRelabeled,      ///< node a relabeled to `label`
  kAttrSet,            ///< node a's attr set to value
  kNodeAddedWithEdge,  ///< a NEW node with `label`, linked to anchor a by an
                       ///< edge labeled `edge_label` (new node is the source
                       ///< when `new_node_is_src`)
  kNodeDeleted,        ///< node a removed
};

struct ExpectedFact {
  FactKind kind;
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  SymbolId label = 0;       ///< node label or edge label per kind
  SymbolId edge_label = 0;  ///< only kNodeAddedWithEdge
  SymbolId attr = 0;        ///< only kAttrSet
  SymbolId value = 0;       ///< only kAttrSet
  bool new_node_is_src = true;
};

/// One injected error: its class, the rule expected to catch it, and the
/// expected repair fact.
struct InjectedError {
  ErrorClass cls;
  std::string rule_hint;
  ExpectedFact fact;
};

/// Which classes to inject and how aggressively. `rate` is the probability
/// that any one eligible site is corrupted.
struct InjectOptions {
  double rate = 0.05;
  bool incomplete = true;
  bool conflict = true;
  bool redundant = true;
  uint64_t seed = 1234;
};

struct InjectReport {
  std::vector<InjectedError> errors;
  size_t CountClass(ErrorClass c) const;
};

/// Corrupts a knowledge graph in place. The graph's journal is reset after
/// injection so repair cost is measured from the corrupted state.
Result<InjectReport> InjectKgErrors(Graph* g, const KgSchema& s,
                                    const InjectOptions& opt);

/// Corrupts a social graph in place (asymmetric knows, self-friendship,
/// duplicate users, orphan users).
Result<InjectReport> InjectSocialErrors(Graph* g, const SocialSchema& s,
                                        const InjectOptions& opt);

/// Corrupts a citation graph in place (time-travel citations, mislabeled
/// authored_by edges, authorless papers, duplicate papers).
Result<InjectReport> InjectCitationErrors(Graph* g, const CitationSchema& s,
                                          const InjectOptions& opt);

}  // namespace grepair

#endif  // GREPAIR_GRAPH_ERROR_INJECTOR_H_
