// ViolationStore tests: dedup/folding, priority order, lazy decrease-key.
#include <gtest/gtest.h>

#include "repair/violation.h"

namespace grepair {
namespace {

Match MakeMatch(std::vector<NodeId> nodes, std::vector<EdgeId> edges) {
  Match m;
  m.nodes = std::move(nodes);
  m.edges = std::move(edges);
  return m;
}

TEST(ViolationKeyTest, OrderIndependent) {
  Match m1 = MakeMatch({1, 2, 3}, {10, 11});
  Match m2 = MakeMatch({3, 1, 2}, {11, 10});
  EXPECT_EQ(ViolationKey(0, m1), ViolationKey(0, m2));
  EXPECT_NE(ViolationKey(0, m1), ViolationKey(1, m1));
  Match m3 = MakeMatch({1, 2, 4}, {10, 11});
  EXPECT_NE(ViolationKey(0, m1), ViolationKey(0, m3));
}

TEST(ViolationStoreTest, AddAndPopInCostOrder) {
  ViolationStore store;
  EXPECT_TRUE(store.Add(0, MakeMatch({1}, {}), 5.0));
  EXPECT_TRUE(store.Add(0, MakeMatch({2}, {}), 1.0));
  EXPECT_TRUE(store.Add(0, MakeMatch({3}, {}), 3.0));
  EXPECT_EQ(store.Size(), 3u);

  Violation v;
  ASSERT_TRUE(store.PopBest(&v));
  EXPECT_EQ(v.alternatives[0].nodes[0], 2u);
  ASSERT_TRUE(store.PopBest(&v));
  EXPECT_EQ(v.alternatives[0].nodes[0], 3u);
  ASSERT_TRUE(store.PopBest(&v));
  EXPECT_EQ(v.alternatives[0].nodes[0], 1u);
  EXPECT_FALSE(store.PopBest(&v));
}

TEST(ViolationStoreTest, FoldsSameKeyIntoAlternatives) {
  ViolationStore store;
  // Same element set, different orderings -> one violation, two alts.
  EXPECT_TRUE(store.Add(0, MakeMatch({1, 2}, {7, 8}), 2.0));
  EXPECT_FALSE(store.Add(0, MakeMatch({2, 1}, {8, 7}), 3.0));
  EXPECT_EQ(store.Size(), 1u);
  Violation v;
  ASSERT_TRUE(store.PopBest(&v));
  EXPECT_EQ(v.alternatives.size(), 2u);
}

TEST(ViolationStoreTest, ExactDuplicateIgnored) {
  ViolationStore store;
  store.Add(0, MakeMatch({1, 2}, {7}), 2.0);
  store.Add(0, MakeMatch({1, 2}, {7}), 2.0);
  Violation v;
  ASSERT_TRUE(store.PopBest(&v));
  EXPECT_EQ(v.alternatives.size(), 1u);
}

TEST(ViolationStoreTest, DecreaseKeyReordersHeap) {
  ViolationStore store;
  store.Add(0, MakeMatch({1}, {}), 5.0);
  store.Add(0, MakeMatch({2, 3}, {9}), 4.0);
  // Fold a cheaper alternative into the first violation.
  store.Add(0, MakeMatch({1}, {0}), 1.0);  // different edges -> different key!
  // That was actually a different key; instead fold same key cheaper:
  store.Add(1, MakeMatch({5}, {}), 6.0);
  Violation v;
  ASSERT_TRUE(store.PopBest(&v));
  EXPECT_DOUBLE_EQ(v.best_cost, 1.0);
}

TEST(ViolationStoreTest, SameKeyCheaperAlternativeWins) {
  ViolationStore store;
  store.Add(0, MakeMatch({1, 2}, {7, 8}), 9.0);
  store.Add(0, MakeMatch({2, 1}, {8, 7}), 2.0);  // same key, cheaper
  store.Add(0, MakeMatch({4}, {}), 5.0);
  Violation v;
  ASSERT_TRUE(store.PopBest(&v));
  EXPECT_DOUBLE_EQ(v.best_cost, 2.0);
  EXPECT_EQ(v.alternatives.size(), 2u);
}

TEST(ViolationStoreTest, ClearEmpties) {
  ViolationStore store;
  store.Add(0, MakeMatch({1}, {}), 1.0);
  store.Clear();
  EXPECT_TRUE(store.Empty());
  Violation v;
  EXPECT_FALSE(store.PopBest(&v));
}

TEST(ViolationStoreTest, SnapshotLeavesStoreIntact) {
  ViolationStore store;
  store.Add(0, MakeMatch({1}, {}), 1.0);
  store.Add(1, MakeMatch({2}, {}), 2.0);
  auto snap = store.Snapshot();
  EXPECT_EQ(snap.size(), 2u);
  EXPECT_EQ(store.Size(), 2u);
}

}  // namespace
}  // namespace grepair
