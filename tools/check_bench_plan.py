#!/usr/bin/env python3
"""Validates the planned-vs-interpreted matching benchmark result.

Usage: check_bench_plan.py <BENCH_matching.json> [slack]

BENCH_matching.json is google-benchmark JSON output containing both arms of
BM_PlannedVsInterpreted: /0 runs the interpreter, /1 the compiled-plan path,
over the same workload and rule set. The check asserts the planned arm is
not slower than the interpreter beyond `slack` (default 1.10 — CI smoke
runners are 2-core and noisy, so the gate is "not a regression", while the
full-scale >=1.5x speedup target is tracked locally in ROADMAP.md).

Exit 0 when planned <= interpreted * slack; nonzero with a diagnostic
otherwise. CI runs this on the bench-smoke artifact so a change that makes
the compiled path slower than the interpreter it replaces fails the push
that introduced it.
"""

import json
import sys


def fail(msg):
    print(f"check_bench_plan: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) not in (2, 3):
        fail("usage: check_bench_plan.py <BENCH_matching.json> [slack]")
    path = sys.argv[1]
    slack = float(sys.argv[2]) if len(sys.argv) == 3 else 1.10

    with open(path) as f:
        doc = json.load(f)
    benches = doc.get("benchmarks")
    if not isinstance(benches, list) or not benches:
        fail(f"{path}: no 'benchmarks' array (is this google-benchmark JSON?)")

    # Aggregate runs (mean/median/stddev) carry a 'aggregate_name'; when
    # repetitions are off each benchmark appears once as an 'iteration' run.
    times = {}
    for b in benches:
        name = b.get("name", "")
        if b.get("run_type") == "aggregate":
            continue
        if name in ("BM_PlannedVsInterpreted/0", "BM_PlannedVsInterpreted/1"):
            times[name] = (float(b["real_time"]), b.get("time_unit", "ns"))

    interp = times.get("BM_PlannedVsInterpreted/0")
    planned = times.get("BM_PlannedVsInterpreted/1")
    if interp is None or planned is None:
        have = sorted(times)
        fail(f"{path}: missing BM_PlannedVsInterpreted arms (found: {have})")
    if interp[1] != planned[1]:
        fail(f"{path}: mismatched time units {interp[1]} vs {planned[1]}")

    it, pt, unit = interp[0], planned[0], interp[1]
    ratio = pt / it if it > 0 else float("inf")
    verdict = (f"interpreted={it:.3f}{unit} planned={pt:.3f}{unit} "
               f"planned/interpreted={ratio:.3f} (slack {slack:.2f})")
    if pt > it * slack:
        fail(f"{path}: compiled plan slower than interpreter: {verdict}")
    print(f"{path}: OK {verdict}")
    print("check_bench_plan: PASS")


if __name__ == "__main__":
    main()
