#include "serve/admission.h"

#include <algorithm>

namespace grepair {
namespace serve {

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_(rate_per_sec),
      burst_(std::max(burst, 1.0)),
      tokens_(std::max(burst, 1.0)) {}

bool TokenBucket::TryAcquire(double now_sec) {
  if (rate_ <= 0.0) return true;  // limiting disabled
  if (!primed_) {
    primed_ = true;
    last_refill_sec_ = now_sec;
  } else if (now_sec > last_refill_sec_) {
    tokens_ = std::min(burst_, tokens_ + (now_sec - last_refill_sec_) * rate_);
    last_refill_sec_ = now_sec;
  }
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options),
      bucket_(options.max_requests_per_sec,
              std::max(options.max_requests_per_sec, 1.0)) {}

bool AdmissionController::TryAdmitConnection() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_ >= options_.max_connections) {
    ++conn_rejected_;
    return false;
  }
  ++active_;
  ++conn_admitted_;
  return true;
}

void AdmissionController::ReleaseConnection() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_ > 0) --active_;
}

bool AdmissionController::TryAdmitRequest(double now_sec) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!bucket_.TryAcquire(now_sec)) {
    ++req_rejected_;
    return false;
  }
  ++req_admitted_;
  return true;
}

size_t AdmissionController::active_connections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}
size_t AdmissionController::connections_admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conn_admitted_;
}
size_t AdmissionController::connections_rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conn_rejected_;
}
size_t AdmissionController::requests_admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return req_admitted_;
}
size_t AdmissionController::requests_rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return req_rejected_;
}

}  // namespace serve
}  // namespace grepair
