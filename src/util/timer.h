// Wall-clock timing for experiment harnesses.
#ifndef GREPAIR_UTIL_TIMER_H_
#define GREPAIR_UTIL_TIMER_H_

#include <chrono>

namespace grepair {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in milliseconds.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in seconds.
  double ElapsedSec() const { return ElapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace grepair

#endif  // GREPAIR_UTIL_TIMER_H_
