// Fluent programmatic construction of GRRs (the alternative to the DSL).
#ifndef GREPAIR_GRR_RULE_BUILDER_H_
#define GREPAIR_GRR_RULE_BUILDER_H_

#include <string>

#include "grr/rule.h"

namespace grepair {

/// Builds a Rule step by step, interning all strings into the vocabulary at
/// call time. Example:
///
///   RuleBuilder b(vocab.get(), "spouse_symmetric", ErrorClass::kIncomplete);
///   VarId x = b.Node("x", "Person"), y = b.Node("y", "Person");
///   b.Edge(x, y, "spouse");
///   b.NoEdge(y, x, "spouse");
///   b.ActionAddEdge(y, x, "spouse");
///   Rule r = std::move(b).Build();
class RuleBuilder {
 public:
  RuleBuilder(Vocabulary* vocab, std::string name, ErrorClass cls);

  /// Pattern construction. Empty label string = wildcard.
  VarId Node(std::string var_name, std::string_view label = "");
  size_t Edge(VarId src, VarId dst, std::string_view label = "");

  /// WHERE clauses.
  RuleBuilder& NoEdge(VarId src, VarId dst, std::string_view label = "");
  RuleBuilder& NoOutEdge(VarId src, std::string_view label = "");
  RuleBuilder& NoInEdge(VarId dst, std::string_view label = "");
  RuleBuilder& Isolated(VarId v);
  RuleBuilder& AttrCmp(VarId lhs, std::string_view lattr, CmpOp op, VarId rhs,
                       std::string_view rattr);
  RuleBuilder& AttrCmpConst(VarId lhs, std::string_view lattr, CmpOp op,
                            std::string_view constant);
  /// Edge-attribute comparisons: edge indexes are the values returned by
  /// Edge().
  RuleBuilder& EdgeAttrCmp(size_t lhs_edge, std::string_view lattr, CmpOp op,
                           size_t rhs_edge, std::string_view rattr);
  RuleBuilder& EdgeAttrCmpConst(size_t lhs_edge, std::string_view lattr,
                                CmpOp op, std::string_view constant);
  RuleBuilder& AttrAbsent(VarId v, std::string_view attr);
  RuleBuilder& AttrPresent(VarId v, std::string_view attr);

  /// ACTION (exactly one must be set).
  RuleBuilder& ActionAddEdge(VarId src, VarId dst, std::string_view label);
  RuleBuilder& ActionAddNode(std::string_view node_label,
                             std::string_view edge_label, VarId anchor,
                             bool new_node_is_src);
  RuleBuilder& ActionDelEdge(size_t edge_idx);
  RuleBuilder& ActionDelNode(VarId v);
  RuleBuilder& ActionRelabelNode(VarId v, std::string_view new_label);
  RuleBuilder& ActionSetAttr(VarId v, std::string_view attr,
                             std::string_view value);
  RuleBuilder& ActionRelabelEdge(size_t edge_idx, std::string_view new_label);
  RuleBuilder& ActionMerge(VarId a, VarId b);

  RuleBuilder& Priority(double p);

  /// Finalizes; the builder must not be reused afterwards.
  Rule Build() &&;

 private:
  Vocabulary* vocab_;
  std::string name_;
  ErrorClass cls_;
  Pattern pattern_;
  RepairAction action_;
  bool has_action_ = false;
  double priority_ = 1.0;
};

}  // namespace grepair

#endif  // GREPAIR_GRR_RULE_BUILDER_H_
