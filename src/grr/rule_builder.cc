#include "grr/rule_builder.h"

#include <cassert>

namespace grepair {

RuleBuilder::RuleBuilder(Vocabulary* vocab, std::string name, ErrorClass cls)
    : vocab_(vocab), name_(std::move(name)), cls_(cls) {}

VarId RuleBuilder::Node(std::string var_name, std::string_view label) {
  SymbolId l = label.empty() ? 0 : vocab_->Label(label);
  return pattern_.AddNode(l, std::move(var_name));
}

size_t RuleBuilder::Edge(VarId src, VarId dst, std::string_view label) {
  SymbolId l = label.empty() ? 0 : vocab_->Label(label);
  auto r = pattern_.AddEdge(src, dst, l);
  assert(r.ok());
  return r.value();
}

RuleBuilder& RuleBuilder::NoEdge(VarId src, VarId dst,
                                 std::string_view label) {
  Nac n;
  n.kind = NacKind::kNoEdge;
  n.src_var = src;
  n.dst_var = dst;
  n.label = label.empty() ? 0 : vocab_->Label(label);
  pattern_.AddNac(n);
  return *this;
}

RuleBuilder& RuleBuilder::NoOutEdge(VarId src, std::string_view label) {
  Nac n;
  n.kind = NacKind::kNoOutEdge;
  n.src_var = src;
  n.label = label.empty() ? 0 : vocab_->Label(label);
  pattern_.AddNac(n);
  return *this;
}

RuleBuilder& RuleBuilder::NoInEdge(VarId dst, std::string_view label) {
  Nac n;
  n.kind = NacKind::kNoInEdge;
  n.dst_var = dst;
  n.label = label.empty() ? 0 : vocab_->Label(label);
  pattern_.AddNac(n);
  return *this;
}

RuleBuilder& RuleBuilder::Isolated(VarId v) {
  Nac n;
  n.kind = NacKind::kNoIncident;
  n.src_var = v;
  pattern_.AddNac(n);
  return *this;
}

RuleBuilder& RuleBuilder::AttrCmp(VarId lhs, std::string_view lattr, CmpOp op,
                                  VarId rhs, std::string_view rattr) {
  AttrPredicate p;
  p.lhs = AttrOperand::VarAttr(lhs, vocab_->Attr(lattr));
  p.op = op;
  p.rhs = AttrOperand::VarAttr(rhs, vocab_->Attr(rattr));
  pattern_.AddPredicate(p);
  return *this;
}

RuleBuilder& RuleBuilder::AttrCmpConst(VarId lhs, std::string_view lattr,
                                       CmpOp op, std::string_view constant) {
  AttrPredicate p;
  p.lhs = AttrOperand::VarAttr(lhs, vocab_->Attr(lattr));
  p.op = op;
  p.rhs = AttrOperand::Const(vocab_->Value(constant));
  pattern_.AddPredicate(p);
  return *this;
}

RuleBuilder& RuleBuilder::EdgeAttrCmp(size_t lhs_edge, std::string_view lattr,
                                      CmpOp op, size_t rhs_edge,
                                      std::string_view rattr) {
  AttrPredicate p;
  p.lhs = AttrOperand::EdgeAttr(lhs_edge, vocab_->Attr(lattr));
  p.op = op;
  p.rhs = AttrOperand::EdgeAttr(rhs_edge, vocab_->Attr(rattr));
  pattern_.AddPredicate(p);
  return *this;
}

RuleBuilder& RuleBuilder::EdgeAttrCmpConst(size_t lhs_edge,
                                           std::string_view lattr, CmpOp op,
                                           std::string_view constant) {
  AttrPredicate p;
  p.lhs = AttrOperand::EdgeAttr(lhs_edge, vocab_->Attr(lattr));
  p.op = op;
  p.rhs = AttrOperand::Const(vocab_->Value(constant));
  pattern_.AddPredicate(p);
  return *this;
}

RuleBuilder& RuleBuilder::AttrAbsent(VarId v, std::string_view attr) {
  AttrPredicate p;
  p.lhs = AttrOperand::VarAttr(v, vocab_->Attr(attr));
  p.op = CmpOp::kAbsent;
  p.rhs = AttrOperand::Const(0);
  pattern_.AddPredicate(p);
  return *this;
}

RuleBuilder& RuleBuilder::AttrPresent(VarId v, std::string_view attr) {
  AttrPredicate p;
  p.lhs = AttrOperand::VarAttr(v, vocab_->Attr(attr));
  p.op = CmpOp::kPresent;
  p.rhs = AttrOperand::Const(0);
  pattern_.AddPredicate(p);
  return *this;
}

RuleBuilder& RuleBuilder::ActionAddEdge(VarId src, VarId dst,
                                        std::string_view label) {
  action_ = RepairAction{};
  action_.kind = ActionKind::kAddEdge;
  action_.var = src;
  action_.var2 = dst;
  action_.label = vocab_->Label(label);
  has_action_ = true;
  return *this;
}

RuleBuilder& RuleBuilder::ActionAddNode(std::string_view node_label,
                                        std::string_view edge_label,
                                        VarId anchor, bool new_node_is_src) {
  action_ = RepairAction{};
  action_.kind = ActionKind::kAddNode;
  action_.node_label = vocab_->Label(node_label);
  action_.label = vocab_->Label(edge_label);
  action_.var = anchor;
  action_.new_node_is_src = new_node_is_src;
  has_action_ = true;
  return *this;
}

RuleBuilder& RuleBuilder::ActionDelEdge(size_t edge_idx) {
  action_ = RepairAction{};
  action_.kind = ActionKind::kDelEdge;
  action_.edge_idx = edge_idx;
  has_action_ = true;
  return *this;
}

RuleBuilder& RuleBuilder::ActionDelNode(VarId v) {
  action_ = RepairAction{};
  action_.kind = ActionKind::kDelNode;
  action_.var = v;
  has_action_ = true;
  return *this;
}

RuleBuilder& RuleBuilder::ActionRelabelNode(VarId v,
                                            std::string_view new_label) {
  action_ = RepairAction{};
  action_.kind = ActionKind::kUpdNode;
  action_.var = v;
  action_.label = vocab_->Label(new_label);
  has_action_ = true;
  return *this;
}

RuleBuilder& RuleBuilder::ActionSetAttr(VarId v, std::string_view attr,
                                        std::string_view value) {
  action_ = RepairAction{};
  action_.kind = ActionKind::kUpdNode;
  action_.var = v;
  action_.attr = vocab_->Attr(attr);
  action_.value = vocab_->Value(value);
  has_action_ = true;
  return *this;
}

RuleBuilder& RuleBuilder::ActionRelabelEdge(size_t edge_idx,
                                            std::string_view new_label) {
  action_ = RepairAction{};
  action_.kind = ActionKind::kUpdEdge;
  action_.edge_idx = edge_idx;
  action_.label = vocab_->Label(new_label);
  has_action_ = true;
  return *this;
}

RuleBuilder& RuleBuilder::ActionMerge(VarId a, VarId b) {
  action_ = RepairAction{};
  action_.kind = ActionKind::kMerge;
  action_.var = a;
  action_.var2 = b;
  has_action_ = true;
  return *this;
}

RuleBuilder& RuleBuilder::Priority(double p) {
  priority_ = p;
  return *this;
}

Rule RuleBuilder::Build() && {
  assert(has_action_ && "rule has no action");
  Rule r(std::move(name_), cls_, std::move(pattern_), action_);
  r.set_priority(priority_);
  return r;
}

}  // namespace grepair
