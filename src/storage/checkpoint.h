// Crash-safe checkpoints of the serving state. A checkpoint file holds the
// full serialized service state (vocabulary dump + graph + violation
// backlog, produced by RepairService) behind a one-line header carrying
// the batch sequence it covers plus the payload's length and CRC32C, and
// is written via temp file + fsync + atomic rename (WriteFileAtomic), so
// a crash mid-checkpoint leaves the previous one intact.
//
// Retention keeps the newest TWO checkpoints and every WAL segment needed
// to replay from the older of them, so recovery can fall back one
// checkpoint when the newest fails validation. See DESIGN.md "Durability"
// for why falling back FURTHER is unsound (replay would cross a state
// swap the log cannot reproduce).
#ifndef GREPAIR_STORAGE_CHECKPOINT_H_
#define GREPAIR_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/fs.h"

namespace grepair {
namespace storage {

/// `checkpoint-<seq>.ckpt` (20-digit zero-padded).
std::string CheckpointName(uint64_t seq);
/// Parses a checkpoint name; false when `name` is not one.
bool ParseCheckpointName(const std::string& name, uint64_t* seq);

/// Atomically writes `checkpoint-<seq>.ckpt` wrapping `payload`.
Status WriteCheckpoint(Fs* fs, const std::string& dir, uint64_t seq,
                       const std::string& payload);

/// Reads and validates one checkpoint file: header syntax, exact payload
/// length, CRC. Validation failures are kDataLoss (the fall-back-or-fail
/// signal); read failures are kIo/kNotFound.
Result<std::string> ReadCheckpoint(Fs* fs, const std::string& path,
                                   uint64_t expected_seq);

/// Checkpoint seqs present in `dir`, sorted descending (newest first).
/// Files whose name doesn't parse are ignored.
Result<std::vector<uint64_t>> ListCheckpoints(Fs* fs, const std::string& dir);

/// Retention after a successful checkpoint at `seq`: keeps the newest
/// `keep` checkpoints (1 = a baseline that re-anchors history, 2 = the
/// normal fallback pair) and removes WAL segments every retained
/// checkpoint can do without — a segment is removable when the NEXT
/// segment starts at or before `oldest retained seq + 1`. Removal errors
/// are swallowed (a stale file is re-trimmed next time); returns how many
/// files were removed.
size_t TrimStorageDir(Fs* fs, const std::string& dir, size_t keep);

}  // namespace storage
}  // namespace grepair

#endif  // GREPAIR_STORAGE_CHECKPOINT_H_
