#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace grepair {
namespace obs {

namespace {

struct TraceEvent {
  const char* name;
  const char* arg_key;
  uint64_t ts_us;
  uint64_t dur_us;
  int64_t arg;
  uint32_t tid;
};

// One ring per recording thread. The owning thread appends; a flushing
// thread reads under the same mutex. The ring is shared_ptr-held by both
// the thread_local slot and the global index, so a flush after thread
// exit still sees its events.
struct TraceRing {
  explicit TraceRing(size_t cap, uint32_t tid_) : tid(tid_) {
    events.resize(cap);
  }
  std::mutex mu;
  std::vector<TraceEvent> events;  // fixed capacity, circular
  size_t next = 0;                 // write position
  size_t count = 0;                // retained (<= capacity)
  uint32_t tid;
};

std::atomic<bool> g_tracing_enabled{false};
std::atomic<size_t> g_ring_capacity{65536};

struct RingIndex {
  std::mutex mu;
  std::vector<std::shared_ptr<TraceRing>> rings;
  uint32_t next_tid = 1;
};

RingIndex& Index() {
  static RingIndex* idx = new RingIndex();  // leaked: process-long
  return *idx;
}

TraceRing& ThisThreadRing() {
  thread_local std::shared_ptr<TraceRing> ring = [] {
    RingIndex& idx = Index();
    std::lock_guard<std::mutex> lock(idx.mu);
    auto r = std::make_shared<TraceRing>(
        std::max<size_t>(1, g_ring_capacity.load(std::memory_order_relaxed)),
        idx.next_tid++);
    idx.rings.push_back(r);
    return r;
  }();
  return *ring;
}

}  // namespace

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

void SetTraceRingCapacity(size_t events) {
  g_ring_capacity.store(std::max<size_t>(1, events),
                        std::memory_order_relaxed);
}

uint64_t NowUs() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

void RecordSpan(const char* name, uint64_t start_us, uint64_t dur_us,
                int64_t arg, const char* arg_key) {
  TraceRing& ring = ThisThreadRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  ring.events[ring.next] = {name, arg_key, start_us, dur_us, arg, ring.tid};
  ring.next = (ring.next + 1) % ring.events.size();
  // Once full the write position laps the oldest event: drop-oldest.
  ring.count = std::min(ring.count + 1, ring.events.size());
}

size_t TraceEventCount() {
  RingIndex& idx = Index();
  std::lock_guard<std::mutex> lock(idx.mu);
  size_t total = 0;
  for (const auto& r : idx.rings) {
    std::lock_guard<std::mutex> rlock(r->mu);
    total += r->count;
  }
  return total;
}

void ClearTrace() {
  RingIndex& idx = Index();
  std::lock_guard<std::mutex> lock(idx.mu);
  for (const auto& r : idx.rings) {
    std::lock_guard<std::mutex> rlock(r->mu);
    r->next = 0;
    r->count = 0;
  }
}

std::string ChromeTraceJson() {
  // Snapshot every ring, then sort by timestamp so the file reads in
  // wall-clock order (viewers do not require it, humans do).
  std::vector<TraceEvent> all;
  {
    RingIndex& idx = Index();
    std::lock_guard<std::mutex> lock(idx.mu);
    for (const auto& r : idx.rings) {
      std::lock_guard<std::mutex> rlock(r->mu);
      const size_t cap = r->events.size();
      const size_t oldest = (r->next + cap - r->count) % cap;
      for (size_t i = 0; i < r->count; ++i)
        all.push_back(r->events[(oldest + i) % cap]);
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });

  std::string out = "[";
  char buf[256];
  for (size_t i = 0; i < all.size(); ++i) {
    const TraceEvent& e = all[i];
    std::snprintf(buf, sizeof(buf),
                  "%s\n{\"name\":\"%s\",\"cat\":\"grepair\",\"ph\":\"X\","
                  "\"pid\":1,\"tid\":%u,\"ts\":%llu,\"dur\":%llu",
                  i == 0 ? "" : ",", e.name, e.tid,
                  static_cast<unsigned long long>(e.ts_us),
                  static_cast<unsigned long long>(e.dur_us));
    out += buf;
    if (e.arg >= 0 && e.arg_key != nullptr) {
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"%s\":%lld}", e.arg_key,
                    static_cast<long long>(e.arg));
      out += buf;
    }
    out += "}";
  }
  out += "\n]\n";
  return out;
}

bool WriteChromeTrace(const std::string& path) {
  const std::string json = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

}  // namespace obs
}  // namespace grepair
