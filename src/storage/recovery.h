// Startup restore: picks the newest checkpoint that validates (falling
// back ONE checkpoint when the newest is corrupt — never further, see
// checkpoint.h), collects the contiguous run of complete WAL batches
// after it, and truncates torn or corrupt segment tails in place so the
// writer resumes on a clean file. The caller (RepairService) loads the
// checkpoint payload, replays the batches through the normal commit path,
// and opens the writer at `next_seq`.
//
// Nothing here is silent: every truncated byte, quarantined checkpoint,
// and dropped batch is counted and described in `notes`.
#ifndef GREPAIR_STORAGE_RECOVERY_H_
#define GREPAIR_STORAGE_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/fs.h"
#include "storage/wal.h"

namespace grepair {
namespace storage {

/// What PlanRecovery decided. `batches` is a contiguous run starting at
/// `checkpoint_seq + 1`; replaying them over the checkpoint payload
/// reproduces the durable commit prefix exactly.
struct RecoveryPlan {
  bool found_checkpoint = false;   ///< false => fresh directory
  uint64_t checkpoint_seq = 0;     ///< batch seq the checkpoint covers
  std::string checkpoint_payload;  ///< serialized service state
  std::vector<WalBatch> batches;   ///< seqs checkpoint_seq+1, +2, ...
  uint64_t next_seq = 1;           ///< first seq the writer should use
  uint64_t truncated_bytes = 0;    ///< torn/corrupt tail bytes cut off
  uint64_t corrupt_checkpoints = 0;  ///< quarantined as *.corrupt
  uint64_t dropped_batches = 0;    ///< complete batches after a seq gap
  std::vector<std::string> notes;  ///< one line per anomaly
};

/// Scans `dir` and produces the plan. Validation failures are handled
/// (quarantine / truncate / drop + note); an error return means the
/// directory itself could not be recovered from: both retained
/// checkpoints failed validation (kDataLoss), the WAL does not reach the
/// chosen checkpoint (kDataLoss), or plain I/O failed (kIo).
Result<RecoveryPlan> PlanRecovery(Fs* fs, const std::string& dir);

/// Human-readable listing of `dir` for `grepair wal dump`: each
/// checkpoint's seq and validation state, each segment's batch range,
/// valid/file sizes, and scan note. Read-only — never truncates or
/// quarantines anything.
Result<std::string> DumpStorageDir(Fs* fs, const std::string& dir);

}  // namespace storage
}  // namespace grepair

#endif  // GREPAIR_STORAGE_RECOVERY_H_
