// Incremental match maintenance: after the repair engine applies an edit,
// only the neighborhood the edit touched can host NEW matches (violations).
// DeltaMatcher re-searches anchored at the touched elements instead of
// re-running global detection — the core efficiency technique of the
// "efficient repairing methods" half of the paper.
//
// Soundness argument (tested property): a match that exists after a delta
// but not before must use an added element, a relabeled/re-attributed
// element, or have had a NAC blocked by a removed element. Every such match
// therefore contains (a) a touched element among its images, or (b) for the
// NAC case, is discoverable by re-searching around the removed element's
// endpoints. Over-reporting (finding pre-existing matches again) is
// harmless: the violation store deduplicates.
#ifndef GREPAIR_MATCH_INCREMENTAL_H_
#define GREPAIR_MATCH_INCREMENTAL_H_

#include <vector>

#include "graph/edit_log.h"
#include "graph/graph.h"
#include "match/matcher.h"

namespace grepair {

/// Incremental (delta-anchored) pattern search over one graph.
class DeltaMatcher {
 public:
  DeltaMatcher(const Graph& graph, const Pattern& pattern);

  /// Enumerates every match that can be NEW after applying `delta`
  /// (journal entries). May also report surviving old matches; never misses
  /// a new one. Matches are deduplicated within one call.
  MatchStats FindDelta(const std::vector<EditEntry>& delta,
                       const MatchCallback& cb) const;

  /// The anchors a delta induces — exposed for tests and diagnostics.
  struct Anchors {
    std::vector<NodeId> nodes;  ///< touched, alive nodes
    std::vector<EdgeId> edges;  ///< added/relabeled, alive edges
  };
  Anchors ComputeAnchors(const std::vector<EditEntry>& delta) const;

 private:
  const Graph& g_;
  const Pattern& p_;
};

}  // namespace grepair

#endif  // GREPAIR_MATCH_INCREMENTAL_H_
