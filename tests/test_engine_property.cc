// Engine property sweeps (TEST_P): on randomly corrupted KG workloads,
// every strategy must reach zero violations (consistent rule set), the
// journal must undo cleanly, and reported cost must equal journal cost
// (invariants 1 and 2 of DESIGN.md).
#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "repair/engine.h"

namespace grepair {
namespace {

struct SweepParam {
  uint64_t seed;
  double rate;
  RepairStrategy strategy;
};

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  return std::string(RepairStrategyName(info.param.strategy)) + "_s" +
         std::to_string(info.param.seed) + "_r" +
         std::to_string(int(info.param.rate * 100));
}

class EngineSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EngineSweep, ReachesFixpointWithExactCostAccounting) {
  const SweepParam& param = GetParam();
  KgOptions gopt;
  gopt.num_persons = 150;
  gopt.num_cities = 25;
  gopt.num_countries = 6;
  gopt.num_orgs = 15;
  gopt.seed = param.seed;
  InjectOptions iopt;
  iopt.rate = param.rate;
  iopt.seed = param.seed * 13 + 1;
  auto bundle = MakeKgBundle(gopt, iopt);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();

  Graph work = bundle.value().graph.Clone();
  uint64_t corrupted_fp = work.Fingerprint();

  RepairOptions opt;
  opt.strategy = param.strategy;
  RepairEngine engine(opt);
  auto res = engine.Run(&work, bundle.value().rules);
  ASSERT_TRUE(res.ok()) << res.status().ToString();

  // Invariant 2: fixpoint reached, zero violations.
  EXPECT_EQ(res.value().remaining_violations, 0u);
  EXPECT_FALSE(res.value().budget_exhausted);

  // Reported cost equals journal cost.
  CostModel model;
  EXPECT_DOUBLE_EQ(res.value().repair_cost, work.CostSince(0, model));

  // Invariant 1: undoing the journal restores the corrupted graph exactly.
  ASSERT_TRUE(work.UndoTo(0).ok());
  EXPECT_EQ(work.Fingerprint(), corrupted_fp);
}

INSTANTIATE_TEST_SUITE_P(
    KgSweep, EngineSweep,
    ::testing::Values(
        SweepParam{1, 0.03, RepairStrategy::kGreedy},
        SweepParam{1, 0.03, RepairStrategy::kNaive},
        SweepParam{1, 0.03, RepairStrategy::kBatch},
        SweepParam{2, 0.08, RepairStrategy::kGreedy},
        SweepParam{2, 0.08, RepairStrategy::kNaive},
        SweepParam{2, 0.08, RepairStrategy::kBatch},
        SweepParam{3, 0.12, RepairStrategy::kGreedy},
        SweepParam{3, 0.12, RepairStrategy::kBatch},
        SweepParam{4, 0.05, RepairStrategy::kGreedy},
        SweepParam{5, 0.05, RepairStrategy::kBatch}),
    ParamName);

class QualityOrdering : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QualityOrdering, SemanticStrategiesBeatNaiveOnConflicts) {
  // Conflict repairs carry the confidence signal; greedy/batch use it,
  // naive cannot. On conflict-only workloads greedy precision must be
  // >= naive precision (strictly greater in aggregate, allowed equal per
  // seed).
  KgOptions gopt;
  gopt.num_persons = 200;
  gopt.num_cities = 30;
  gopt.num_countries = 8;
  gopt.seed = GetParam();
  InjectOptions iopt;
  iopt.rate = 0.10;
  iopt.incomplete = false;
  iopt.redundant = false;
  iopt.seed = GetParam() + 100;
  auto bundle = MakeKgBundle(gopt, iopt);
  ASSERT_TRUE(bundle.ok());
  if (bundle.value().truth.errors.empty()) GTEST_SKIP();

  auto greedy = RunMethod(bundle.value(), "greedy");
  auto naive = RunMethod(bundle.value(), "naive");
  ASSERT_TRUE(greedy.ok() && naive.ok());
  EXPECT_GE(greedy.value().quality.precision + 1e-9,
            naive.value().quality.precision);
  EXPECT_EQ(greedy.value().repair.remaining_violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QualityOrdering,
                         ::testing::Range<uint64_t>(10, 16));

class RepairQualityHigh : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RepairQualityHigh, GreedyRecallIsHighOnKg) {
  KgOptions gopt;
  gopt.num_persons = 200;
  gopt.num_cities = 30;
  gopt.num_countries = 8;
  gopt.num_orgs = 20;
  gopt.seed = GetParam();
  InjectOptions iopt;
  iopt.rate = 0.06;
  iopt.seed = GetParam() * 3 + 7;
  auto bundle = MakeKgBundle(gopt, iopt);
  ASSERT_TRUE(bundle.ok());
  if (bundle.value().truth.errors.empty()) GTEST_SKIP();

  auto out = RunMethod(bundle.value(), "greedy");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().repair.remaining_violations, 0u);
  EXPECT_GT(out.value().quality.recall, 0.8);
  EXPECT_GT(out.value().quality.precision, 0.8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairQualityHigh,
                         ::testing::Range<uint64_t>(20, 26));

}  // namespace
}  // namespace grepair
