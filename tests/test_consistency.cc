// Consistency analysis tests: static checker verdicts on the shipped and
// adversarial rule sets, trigger-graph structure, and Monte-Carlo witnesses.
#include <gtest/gtest.h>

#include "consistency/checker.h"
#include "consistency/simulator.h"
#include "grr/standard_rules.h"

namespace grepair {
namespace {

TEST(TriggerGraphTest, CascadePairHasTriggerEdge) {
  auto vocab = MakeVocabulary();
  auto rules = KgRules(vocab);
  ASSERT_TRUE(rules.ok());
  TriggerGraph tg = TriggerGraph::Build(rules.value(), *vocab);
  // country_needs_capital creates a capital_of edge that
  // capital_implies_located's pattern uses.
  RuleId creator = rules.value().Find("country_needs_capital").value();
  RuleId consumer = rules.value().Find("capital_implies_located").value();
  bool found = false;
  for (const auto& t : tg.triggers())
    if (t.from == creator && t.to == consumer) found = true;
  EXPECT_TRUE(found);
}

TEST(TriggerGraphTest, CyclicAdversarialSetHasCreationCycle) {
  auto vocab = MakeVocabulary();
  auto rules = AdversarialCyclicRules(vocab);
  ASSERT_TRUE(rules.ok());
  TriggerGraph tg = TriggerGraph::Build(rules.value(), *vocab);
  EXPECT_TRUE(tg.HasCreationCycle());
  EXPECT_EQ(tg.CreationCycle().size(), 3u);
}

TEST(TriggerGraphTest, KgSetHasNoCreationCycle) {
  auto vocab = MakeVocabulary();
  auto rules = KgRules(vocab);
  ASSERT_TRUE(rules.ok());
  TriggerGraph tg = TriggerGraph::Build(rules.value(), *vocab);
  EXPECT_FALSE(tg.HasCreationCycle());
  EXPECT_FALSE(tg.HasRelabelCycle());
}

TEST(TriggerGraphTest, ContradictoryPairDetected) {
  auto vocab = MakeVocabulary();
  auto rules = ContradictoryRules(vocab);
  ASSERT_TRUE(rules.ok());
  TriggerGraph tg = TriggerGraph::Build(rules.value(), *vocab);
  EXPECT_FALSE(tg.contradictions().empty());
}

TEST(CheckerTest, ShippedSetsAreStaticallyConsistent) {
  auto vocab = MakeVocabulary();
  for (auto maker : {KgRules, SocialRules, CitationRules}) {
    auto rules = maker(vocab);
    ASSERT_TRUE(rules.ok());
    ConsistencyReport rep = CheckConsistency(rules.value(), *vocab);
    EXPECT_TRUE(rep.statically_consistent)
        << "issues: " << (rep.issues.empty() ? "" : rep.issues[0]);
  }
}

TEST(CheckerTest, AdversarialSetsRejected) {
  auto vocab = MakeVocabulary();
  {
    auto rules = AdversarialCyclicRules(vocab);
    ASSERT_TRUE(rules.ok());
    ConsistencyReport rep = CheckConsistency(rules.value(), *vocab);
    EXPECT_FALSE(rep.statically_consistent);
    EXPECT_TRUE(rep.creation_cycle);
  }
  {
    auto rules = ContradictoryRules(vocab);
    ASSERT_TRUE(rules.ok());
    ConsistencyReport rep = CheckConsistency(rules.value(), *vocab);
    EXPECT_FALSE(rep.statically_consistent);
    EXPECT_GT(rep.num_contradictions, 0u);
  }
}

TEST(CheckerTest, EmptySetConsistent) {
  auto vocab = MakeVocabulary();
  RuleSet empty;
  ConsistencyReport rep = CheckConsistency(empty, *vocab);
  EXPECT_TRUE(rep.statically_consistent);
  EXPECT_EQ(rep.num_trigger_edges, 0u);
}

TEST(SimulatorTest, FindsNonTerminationWitnessForCyclicSet) {
  auto vocab = MakeVocabulary();
  auto rules = AdversarialCyclicRules(vocab);
  ASSERT_TRUE(rules.ok());
  SimOptions opt;
  opt.trials = 5;
  opt.nodes_per_trial = 6;
  opt.edges_per_trial = 4;
  opt.max_fixes = 60;
  SimulationReport rep = SimulateRuleSet(rules.value(), vocab, opt);
  EXPECT_TRUE(rep.witness_found);
  EXPECT_GT(rep.nonterminating, 0u);
}

TEST(SimulatorTest, FindsOscillationWitnessForContradictorySet) {
  auto vocab = MakeVocabulary();
  auto rules = ContradictoryRules(vocab);
  ASSERT_TRUE(rules.ok());
  SimOptions opt;
  opt.trials = 8;
  opt.nodes_per_trial = 6;
  opt.edges_per_trial = 8;
  opt.max_fixes = 100;
  SimulationReport rep = SimulateRuleSet(rules.value(), vocab, opt);
  EXPECT_TRUE(rep.witness_found);
}

TEST(SimulatorTest, KgRulesTerminateInSimulation) {
  auto vocab = MakeVocabulary();
  auto rules = KgRules(vocab);
  ASSERT_TRUE(rules.ok());
  SimOptions opt;
  opt.trials = 6;
  opt.nodes_per_trial = 10;
  opt.edges_per_trial = 14;
  opt.max_fixes = 400;
  SimulationReport rep = SimulateRuleSet(rules.value(), vocab, opt);
  EXPECT_EQ(rep.nonterminating, 0u);
}

}  // namespace
}  // namespace grepair
