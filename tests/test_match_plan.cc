// Compiled match-plan tests: the vectorized intersection kernels on
// adversarial range shapes, the central bit-identical-stream guarantee
// (planned == interpreted FindAll on generator graphs, anchored and NAC
// patterns, and through both parallel detectors for every shard x thread
// combination), and PlanCache hit/revalidate/recompile behavior.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "eval/experiment.h"
#include "graph/generators.h"
#include "graph/error_injector.h"
#include "graph/sharded_snapshot.h"
#include "graph/snapshot.h"
#include "match/incremental.h"
#include "match/intersect.h"
#include "match/matcher.h"
#include "match/plan.h"
#include "parallel/delta_detector.h"
#include "parallel/parallel_detector.h"
#include "parallel/thread_pool.h"

namespace grepair {
namespace {

// ------------------------------------------------------------ intersection

std::vector<uint32_t> Reference(const std::vector<uint32_t>& a,
                                const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

void ExpectIntersection(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  IntersectSorted(a, b, &out);
  EXPECT_EQ(out, Reference(a, b));
  // Symmetric: the dispatcher routes by size, the result must not care.
  std::vector<uint32_t> rev;
  IntersectSorted(b, a, &rev);
  EXPECT_EQ(rev, Reference(a, b));
}

TEST(IntersectTest, EmptyAndDisjointAndEqual) {
  ExpectIntersection({}, {});
  ExpectIntersection({}, {1, 2, 3});
  ExpectIntersection({1, 3, 5}, {2, 4, 6});          // interleaved disjoint
  ExpectIntersection({1, 2, 3}, {1, 2, 3});          // identical
  ExpectIntersection({10, 20, 30}, {40, 50, 60});    // fully below/above
}

TEST(IntersectTest, NestedAndPartialOverlap) {
  ExpectIntersection({5, 6, 7}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  ExpectIntersection({1, 100}, {1, 2, 3, 99, 100});
  std::vector<uint32_t> dense, sparse;
  for (uint32_t i = 0; i < 1000; ++i) dense.push_back(i);
  for (uint32_t i = 0; i < 1000; i += 97) sparse.push_back(i);
  ExpectIntersection(dense, sparse);
}

TEST(IntersectTest, SkewTriggersGallopingAndBalancedTriggersMerge) {
  std::vector<uint32_t> small = {3, 5000, 99991};
  std::vector<uint32_t> large;
  for (uint32_t i = 0; i < 100000; ++i) large.push_back(i);
  std::vector<uint32_t> out;
  IntersectStats st;
  IntersectSorted(small.data(), small.size(), large.data(), large.size(),
                  &out, &st);
  EXPECT_EQ(out, small);
  EXPECT_EQ(st.gallop, 1u);
  EXPECT_EQ(st.merge, 0u);

  std::vector<uint32_t> a = {1, 2, 3, 4}, b = {2, 4, 6, 8};
  IntersectStats st2;
  IntersectSorted(a.data(), a.size(), b.data(), b.size(), &out, &st2);
  EXPECT_EQ(out, (std::vector<uint32_t>{2, 4}));
  EXPECT_EQ(st2.gallop, 0u);
  EXPECT_EQ(st2.merge, 1u);
}

TEST(IntersectTest, GallopingHandlesRunsAndBoundaries) {
  // Small list hugging both ends of the large list, plus a long run of
  // misses in between — the exponential stride must not overshoot.
  std::vector<uint32_t> large;
  for (uint32_t i = 0; i < 4096; ++i) large.push_back(2 * i);  // evens
  std::vector<uint32_t> small = {0, 1, 2, 4094, 8190, 8191};
  ExpectIntersection(small, large);
}

TEST(IntersectTest, SortUniqueIds) {
  std::vector<uint32_t> v = {5, 1, 5, 3, 1, 1, 9};
  SortUniqueIds(&v);
  EXPECT_EQ(v, (std::vector<uint32_t>{1, 3, 5, 9}));
  std::vector<uint32_t> empty;
  SortUniqueIds(&empty);
  EXPECT_TRUE(empty.empty());
}

// ------------------------------------------------- planned == interpreted

using Stream = std::vector<std::pair<RuleId, Match>>;

// Full per-rule FindAll stream through the interpreter (use_plan=false).
Stream InterpretedStream(const GraphView& g, const RuleSet& rules) {
  Stream out;
  for (RuleId r = 0; r < rules.size(); ++r) {
    Matcher m(g, rules[r].pattern());
    MatchOptions opts;
    opts.use_plan = false;
    m.FindAll(opts, [&](const Match& match) {
      out.emplace_back(r, match);
      return true;
    });
  }
  return out;
}

// Same stream through compiled plans.
Stream PlannedStream(const GraphView& g, const RuleSet& rules) {
  std::vector<const Pattern*> patterns;
  for (RuleId r = 0; r < rules.size(); ++r)
    patterns.push_back(&rules[r].pattern());
  std::vector<MatchPlan> plans = CompilePlans(patterns, g);
  Stream out;
  for (RuleId r = 0; r < rules.size(); ++r) {
    Matcher m(g, rules[r].pattern(), &plans[r]);
    m.FindAll(MatchOptions{}, [&](const Match& match) {
      out.emplace_back(r, match);
      return true;
    });
  }
  return out;
}

void ExpectSameStream(const Stream& a, const Stream& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first) << "emission " << i;
    EXPECT_EQ(a[i].second, b[i].second) << "emission " << i;
  }
}

DatasetBundle SmallKg() {
  KgOptions gopt;
  gopt.num_persons = 400;
  gopt.num_cities = 40;
  gopt.num_countries = 10;
  gopt.num_orgs = 25;
  InjectOptions iopt;
  iopt.rate = 0.08;
  auto b = MakeKgBundle(gopt, iopt);
  EXPECT_TRUE(b.ok()) << b.status().ToString();
  return std::move(b).value();
}

TEST(MatchPlanTest, KgPlannedMatchesInterpreted) {
  DatasetBundle bundle = SmallKg();
  GraphSnapshot snap(bundle.graph);
  ExpectSameStream(InterpretedStream(snap, bundle.rules),
                   PlannedStream(snap, bundle.rules));
}

TEST(MatchPlanTest, SocialPlannedMatchesInterpreted) {
  SocialOptions gopt;
  gopt.num_persons = 400;
  InjectOptions iopt;
  iopt.rate = 0.08;
  auto b = MakeSocialBundle(gopt, iopt);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  GraphSnapshot snap(b.value().graph);
  ExpectSameStream(InterpretedStream(snap, b.value().rules),
                   PlannedStream(snap, b.value().rules));
}

TEST(MatchPlanTest, CitationPlannedMatchesInterpreted) {
  CitationOptions gopt;
  gopt.num_papers = 300;
  gopt.num_authors = 120;
  InjectOptions iopt;
  iopt.rate = 0.08;
  auto b = MakeCitationBundle(gopt, iopt);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  GraphSnapshot snap(b.value().graph);
  ExpectSameStream(InterpretedStream(snap, b.value().rules),
                   PlannedStream(snap, b.value().rules));
}

// Stats parity: identical expansion counts are what make budget truncation
// and the parallel detector's sequential-rerun trigger fire identically.
TEST(MatchPlanTest, ExpansionCountsMatchInterpreter) {
  DatasetBundle bundle = SmallKg();
  GraphSnapshot snap(bundle.graph);
  std::vector<const Pattern*> patterns;
  for (RuleId r = 0; r < bundle.rules.size(); ++r)
    patterns.push_back(&bundle.rules[r].pattern());
  std::vector<MatchPlan> plans = CompilePlans(patterns, snap);
  for (RuleId r = 0; r < bundle.rules.size(); ++r) {
    MatchOptions interp;
    interp.use_plan = false;
    MatchStats a =
        Matcher(snap, bundle.rules[r].pattern())
            .FindAll(interp, [](const Match&) { return true; });
    MatchStats b =
        Matcher(snap, bundle.rules[r].pattern(), &plans[r])
            .FindAll(MatchOptions{}, [](const Match&) { return true; });
    EXPECT_EQ(a.expansions, b.expansions) << "rule " << r;
    EXPECT_EQ(a.matches, b.matches) << "rule " << r;
    EXPECT_EQ(a.exhausted, b.exhausted) << "rule " << r;
  }
}

// Budget truncation must cut the planned stream at the same match.
TEST(MatchPlanTest, TruncationPointMatchesInterpreter) {
  DatasetBundle bundle = SmallKg();
  GraphSnapshot snap(bundle.graph);
  for (RuleId r = 0; r < bundle.rules.size(); ++r) {
    const Pattern& p = bundle.rules[r].pattern();
    MatchPlan plan = MatchPlan::Compile(p, snap);
    for (size_t budget : {1u, 7u, 50u, 500u}) {
      MatchOptions interp;
      interp.use_plan = false;
      interp.max_expansions = budget;
      MatchOptions planned;
      planned.max_expansions = budget;
      std::vector<Match> a, b;
      Matcher(snap, p).FindAll(interp, [&](const Match& m) {
        a.push_back(m);
        return true;
      });
      Matcher(snap, p, &plan).FindAll(planned, [&](const Match& m) {
        b.push_back(m);
        return true;
      });
      ASSERT_EQ(a.size(), b.size()) << "rule " << r << " budget " << budget;
      for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
    }
  }
}

// ------------------------------------- anchored and NAC patterns, planned

class PlanFixtureTest : public ::testing::Test {
 protected:
  PlanFixtureTest() : vocab_(MakeVocabulary()), g_(vocab_) {
    a_ = vocab_->Label("A");
    b_ = vocab_->Label("B");
    e_ = vocab_->Label("e");
    f_ = vocab_->Label("f");
  }

  // Planned and interpreted CollectWith must agree exactly.
  void ExpectParity(const Pattern& p, const MatchOptions& base) {
    GraphSnapshot snap(g_);
    MatchPlan plan = MatchPlan::Compile(p, snap);
    MatchOptions interp = base;
    interp.use_plan = false;
    std::vector<Match> want = Matcher(snap, p).CollectWith(interp);
    std::vector<Match> got = Matcher(snap, p, &plan).CollectWith(base);
    ASSERT_EQ(want.size(), got.size());
    for (size_t i = 0; i < want.size(); ++i) EXPECT_EQ(want[i], got[i]);
  }

  VocabularyPtr vocab_;
  Graph g_;
  SymbolId a_, b_, e_, f_;
};

TEST_F(PlanFixtureTest, NodeAnchorsUseAnchoredBody) {
  NodeId x1 = g_.AddNode(a_);
  NodeId x2 = g_.AddNode(a_);
  NodeId y = g_.AddNode(b_);
  g_.AddEdge(x1, y, e_);
  g_.AddEdge(x2, y, e_);
  Pattern p;
  VarId u = p.AddNode(a_), v = p.AddNode(b_);
  p.AddEdge(u, v, e_);
  MatchOptions opts;
  opts.node_anchors.push_back({u, x2});
  ExpectParity(p, opts);
  MatchOptions both;
  both.node_anchors.push_back({u, x1});
  both.node_anchors.push_back({v, y});
  ExpectParity(p, both);
}

TEST_F(PlanFixtureTest, EdgeAnchorsUseAnchoredBody) {
  NodeId x = g_.AddNode(a_), y = g_.AddNode(b_), z = g_.AddNode(b_);
  EdgeId target = g_.AddEdge(x, y, e_).value();
  g_.AddEdge(x, z, e_);
  Pattern p;
  VarId u = p.AddNode(a_), v = p.AddNode(b_);
  p.AddEdge(u, v, e_);
  MatchOptions opts;
  opts.edge_anchors.push_back({0, target});
  ExpectParity(p, opts);
}

TEST_F(PlanFixtureTest, NacPatternsAgree) {
  NodeId x1 = g_.AddNode(a_), x2 = g_.AddNode(a_);
  NodeId y1 = g_.AddNode(b_), y2 = g_.AddNode(b_);
  g_.AddEdge(x1, y1, e_);
  g_.AddEdge(x2, y2, e_);
  g_.AddEdge(y1, x1, f_);  // back edge only for the first pair
  Pattern p;
  VarId u = p.AddNode(a_), v = p.AddNode(b_);
  p.AddEdge(u, v, e_);
  Nac nac;
  nac.kind = NacKind::kNoEdge;
  nac.src_var = v;
  nac.dst_var = u;
  nac.label = f_;
  p.AddNac(nac);
  ExpectParity(p, MatchOptions{});
}

TEST_F(PlanFixtureTest, AttrJoinAndPredicatesAgree) {
  SymbolId name = vocab_->Attr("name");
  NodeId x = g_.AddNode(a_), y = g_.AddNode(a_), z = g_.AddNode(a_);
  g_.SetNodeAttr(x, name, vocab_->Value("n1"));
  g_.SetNodeAttr(y, name, vocab_->Value("n1"));
  g_.SetNodeAttr(z, name, vocab_->Value("n2"));
  Pattern p;
  VarId u = p.AddNode(a_), v = p.AddNode(a_);
  AttrPredicate pred;
  pred.lhs = AttrOperand::VarAttr(u, name);
  pred.op = CmpOp::kEq;
  pred.rhs = AttrOperand::VarAttr(v, name);
  p.AddPredicate(pred);
  ExpectParity(p, MatchOptions{});
}

// ---------------------------------------------- parallel detectors + plans

TEST(MatchPlanTest, ParallelDetectorWithPlansMatchesSequentialInterpreter) {
  DatasetBundle bundle = SmallKg();
  for (size_t shards : {1u, 2u, 4u, 8u}) {
    ShardedSnapshot snap(bundle.graph, shards);
    const Stream seq = InterpretedStream(snap, bundle.rules);
    std::vector<const Pattern*> patterns;
    for (RuleId r = 0; r < bundle.rules.size(); ++r)
      patterns.push_back(&bundle.rules[r].pattern());
    std::vector<MatchPlan> plans = CompilePlans(patterns, snap);
    std::vector<const MatchPlan*> ptrs;
    for (const MatchPlan& p : plans) ptrs.push_back(&p);
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      ThreadPool pool(threads);
      ParallelDetectOptions opts;
      opts.shard_min_seeds = 1;  // force shard-level fan-out
      ParallelDetector detector(&pool, opts);
      Stream par;
      detector.Detect(
          snap, bundle.rules,
          [&](RuleId r, const Match& m) { par.emplace_back(r, m); },
          ptrs.data());
      ASSERT_EQ(seq.size(), par.size())
          << "shards=" << shards << " threads=" << threads;
      for (size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(seq[i].first, par[i].first) << "emission " << i;
        EXPECT_EQ(seq[i].second, par[i].second) << "emission " << i;
      }
    }
  }
}

TEST(MatchPlanTest, DeltaDetectorWithPlansMatchesSequentialInterpreter) {
  DatasetBundle bundle = SmallKg();
  Graph& g = bundle.graph;
  g.EnableDeltaLog();
  // A synthetic delta touching a spread of nodes: relabel every 7th node
  // to itself-adjacent labels via the journal (attr flips anchor nodes).
  size_t mark = g.JournalSize();
  SymbolId name = g.vocab()->Attr("name");
  for (NodeId n = 0; n < g.NumNodes(); n += 7) {
    if (!g.NodeAlive(n)) continue;
    g.SetNodeAttr(n, name, g.vocab()->Value("delta"));
  }
  std::vector<EditEntry> delta(g.Journal().begin() + mark, g.Journal().end());
  ASSERT_FALSE(delta.empty());

  // Sequential interpreter reference.
  Stream seq;
  for (RuleId r = 0; r < bundle.rules.size(); ++r) {
    DeltaMatcher dm(g, bundle.rules[r].pattern());
    dm.FindDelta(delta, [&](const Match& m) {
      seq.emplace_back(r, m);
      return true;
    });
  }

  for (size_t shards : {1u, 2u, 4u, 8u}) {
    ShardedSnapshot snap(g, shards);
    std::vector<const Pattern*> patterns;
    for (RuleId r = 0; r < bundle.rules.size(); ++r)
      patterns.push_back(&bundle.rules[r].pattern());
    std::vector<MatchPlan> plans = CompilePlans(patterns, snap);
    std::vector<const MatchPlan*> ptrs;
    for (const MatchPlan& p : plans) ptrs.push_back(&p);
    for (size_t threads : {1u, 2u, 4u, 8u}) {
      ThreadPool pool(threads);
      ParallelDeltaOptions opts;
      opts.shard_min_anchors = 1;  // force fan-out
      ParallelDeltaDetector detector(&pool, opts);
      Stream par;
      detector.Detect(
          snap, bundle.rules, delta,
          [&](RuleId r, const Match& m) { par.emplace_back(r, m); },
          ptrs.data());
      ASSERT_EQ(seq.size(), par.size())
          << "shards=" << shards << " threads=" << threads;
      for (size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(seq[i].first, par[i].first) << "emission " << i;
        EXPECT_EQ(seq[i].second, par[i].second) << "emission " << i;
      }
    }
  }
}

// -------------------------------------------------------------- PlanCache

TEST(PlanCacheTest, HitRevalidateRecompile) {
  DatasetBundle bundle = SmallKg();
  GraphSnapshot snap(bundle.graph);
  const Pattern& p = bundle.rules[0].pattern();
  PlanCache cache;
  const MatchPlan* first = cache.Get(0, p, snap, /*generation=*/1);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(cache.cache_stats().recompiles, 1u);

  // Same generation: pure hit, same object.
  const MatchPlan* again = cache.Get(0, p, snap, 1);
  EXPECT_EQ(again, first);
  EXPECT_EQ(cache.cache_stats().hits, 1u);

  // New generation, unchanged graph: cardinalities did not move, so the
  // cached plan revalidates instead of recompiling.
  const MatchPlan* reval = cache.Get(0, p, snap, 2);
  EXPECT_EQ(reval, first);
  EXPECT_EQ(cache.cache_stats().revalidations, 1u);
  EXPECT_EQ(cache.cache_stats().recompiles, 1u);

  // A drastically different snapshot (fresh tiny graph) shifts the label
  // cardinalities past the threshold: recompile.
  Graph tiny(bundle.graph.vocab());
  tiny.AddNode(bundle.graph.vocab()->Label("Person"));
  GraphSnapshot tiny_snap(tiny);
  cache.Get(0, p, tiny_snap, 3);
  EXPECT_EQ(cache.cache_stats().recompiles, 2u);

  cache.Clear();
  cache.Get(0, p, snap, 3);
  EXPECT_EQ(cache.cache_stats().recompiles, 3u);
}

TEST(PlanCacheTest, PointersStableAcrossGrowth) {
  DatasetBundle bundle = SmallKg();
  GraphSnapshot snap(bundle.graph);
  PlanCache cache;
  std::vector<const MatchPlan*> ptrs;
  for (RuleId r = 0; r < bundle.rules.size(); ++r)
    ptrs.push_back(cache.Get(r, bundle.rules[r].pattern(), snap, 1));
  // Growing the table for later rules must not have moved earlier plans.
  for (RuleId r = 0; r < bundle.rules.size(); ++r) {
    EXPECT_EQ(cache.Get(r, bundle.rules[r].pattern(), snap, 1), ptrs[r]);
    EXPECT_EQ(ptrs[r]->pattern(), &bundle.rules[r].pattern());
  }
}

TEST(PlanCacheTest, CachedPlanStreamsMatchFreshCompile) {
  DatasetBundle bundle = SmallKg();
  GraphSnapshot snap(bundle.graph);
  PlanCache cache;
  Stream fresh = PlannedStream(snap, bundle.rules);
  Stream cached;
  for (RuleId r = 0; r < bundle.rules.size(); ++r) {
    const MatchPlan* plan =
        cache.Get(r, bundle.rules[r].pattern(), snap, /*generation=*/5);
    Matcher m(snap, bundle.rules[r].pattern(), plan);
    m.FindAll(MatchOptions{}, [&](const Match& match) {
      cached.emplace_back(r, match);
      return true;
    });
  }
  ExpectSameStream(fresh, cached);
}

// ---------------------------------------------------------------- Explain

TEST(MatchPlanTest, ExplainSmoke) {
  DatasetBundle bundle = SmallKg();
  GraphSnapshot snap(bundle.graph);
  for (RuleId r = 0; r < bundle.rules.size(); ++r) {
    MatchPlan plan = MatchPlan::Compile(bundle.rules[r].pattern(), snap);
    if (!plan.usable()) continue;
    std::string text = plan.Explain(*bundle.graph.vocab());
    EXPECT_FALSE(text.empty()) << "rule " << r;
    EXPECT_NE(text.find("body"), std::string::npos) << text;
  }
}

// The ablation switch: use_plan=false on a plan-carrying matcher must take
// the interpreter path (and still agree, trivially, with itself).
TEST(MatchPlanTest, UsePlanFalseDisablesPlan) {
  DatasetBundle bundle = SmallKg();
  GraphSnapshot snap(bundle.graph);
  const Pattern& p = bundle.rules[0].pattern();
  MatchPlan plan = MatchPlan::Compile(p, snap);
  MatchOptions off;
  off.use_plan = false;
  std::vector<Match> a = Matcher(snap, p, &plan).CollectWith(off);
  std::vector<Match> b = Matcher(snap, p).CollectWith(MatchOptions{});
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

}  // namespace
}  // namespace grepair
