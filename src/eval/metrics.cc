#include "eval/metrics.h"

#include <algorithm>

namespace grepair {
namespace {

// Does this applied fix realize this expected fact?
bool FixRealizesFact(const Graph& repaired, const AppliedFix& f,
                     const ExpectedFact& fact) {
  switch (fact.kind) {
    case FactKind::kEdgeAdded:
      // Realized by adding the edge, or by relabeling an edge into it.
      return (f.kind == ActionKind::kAddEdge ||
              f.kind == ActionKind::kUpdEdge) &&
             f.node_a == fact.a && f.node_b == fact.b &&
             f.label == fact.label;
    case FactKind::kEdgeRemoved:
      return f.kind == ActionKind::kDelEdge && f.node_a == fact.a &&
             f.node_b == fact.b && f.label == fact.label;
    case FactKind::kNodesMerged: {
      if (f.kind != ActionKind::kMerge) return false;
      NodeId lo = std::min(fact.a, fact.b), hi = std::max(fact.a, fact.b);
      return f.node_a == lo && f.node_b == hi;
    }
    case FactKind::kNodeRelabeled:
      return f.kind == ActionKind::kUpdNode && f.node_a == fact.a &&
             f.label == fact.label;
    case FactKind::kAttrSet:
      return f.kind == ActionKind::kUpdNode && f.node_a == fact.a &&
             f.attr == fact.attr && f.value == fact.value;
    case FactKind::kNodeAddedWithEdge:
      return f.kind == ActionKind::kAddNode && f.node_a == fact.a &&
             f.label == fact.edge_label && f.new_node != kInvalidNode &&
             f.new_node < repaired.NodeIdBound() &&
             repaired.NodeLabel(f.new_node) == fact.label;
    case FactKind::kNodeDeleted:
      return f.kind == ActionKind::kDelNode && f.node_a == fact.a;
  }
  return false;
}

bool FixIsConsequential(const AppliedFix& f, NodeId bound) {
  auto created = [bound](NodeId n) {
    return n != kInvalidNode && n >= bound;
  };
  return created(f.node_a) || created(f.node_b);
}

}  // namespace

QualityMetrics EvaluateRepair(const Graph& repaired,
                              const std::vector<AppliedFix>& applied,
                              const InjectReport& truth,
                              NodeId repair_node_bound) {
  QualityMetrics m;
  m.expected_facts = truth.errors.size();

  std::vector<bool> fix_correct(applied.size(), false);
  std::vector<bool> fix_consequential(applied.size(), false);
  for (size_t i = 0; i < applied.size(); ++i)
    fix_consequential[i] = FixIsConsequential(applied[i], repair_node_bound);

  for (const InjectedError& err : truth.errors) {
    bool matched = false;
    for (size_t i = 0; i < applied.size(); ++i) {
      if (FixRealizesFact(repaired, applied[i], err.fact)) {
        matched = true;
        fix_correct[i] = true;
      }
    }
    if (matched) ++m.matched_facts;
  }

  for (size_t i = 0; i < applied.size(); ++i) {
    if (fix_consequential[i] && !fix_correct[i]) {
      ++m.consequential_fixes;
      continue;
    }
    ++m.countable_fixes;
    if (fix_correct[i]) ++m.correct_fixes;
  }

  m.precision = m.countable_fixes
                    ? double(m.correct_fixes) / double(m.countable_fixes)
                    : (m.expected_facts == 0 ? 1.0 : 0.0);
  m.recall = m.expected_facts
                 ? double(m.matched_facts) / double(m.expected_facts)
                 : 1.0;
  m.f1 = (m.precision + m.recall) > 0
             ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;
  return m;
}

}  // namespace grepair
