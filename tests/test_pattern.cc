// Pattern model and predicate evaluation tests.
#include <gtest/gtest.h>

#include "graph/graph.h"
#include "match/pattern.h"
#include "match/predicate.h"

namespace grepair {
namespace {

TEST(PatternTest, BuildAndValidate) {
  Pattern p;
  VarId x = p.AddNode(1, "x");
  VarId y = p.AddNode(2, "y");
  ASSERT_TRUE(p.AddEdge(x, y, 3).ok());
  EXPECT_TRUE(p.Validate().ok());
  EXPECT_EQ(p.NumNodes(), 2u);
  EXPECT_EQ(p.NumEdges(), 1u);
}

TEST(PatternTest, EmptyPatternInvalid) {
  Pattern p;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(PatternTest, BadEdgeEndpointRejected) {
  Pattern p;
  p.AddNode(1);
  EXPECT_FALSE(p.AddEdge(0, 5, 1).ok());
}

TEST(PatternTest, BadNacVarRejected) {
  Pattern p;
  p.AddNode(1);
  Nac n;
  n.kind = NacKind::kNoEdge;
  n.src_var = 0;
  n.dst_var = 9;
  p.AddNac(n);
  EXPECT_FALSE(p.Validate().ok());
}

TEST(PatternTest, ConstantOnlyPredicateRejected) {
  Pattern p;
  p.AddNode(1);
  AttrPredicate pred;
  pred.lhs = AttrOperand::Const(1);
  pred.op = CmpOp::kEq;
  pred.rhs = AttrOperand::Const(2);
  p.AddPredicate(pred);
  EXPECT_FALSE(p.Validate().ok());
}

TEST(PatternTest, PositiveLabelsDeduped) {
  Pattern p;
  p.AddNode(5);
  p.AddNode(5);
  VarId a = 0, b = 1;
  p.AddEdge(a, b, 7);
  auto labels = p.PositiveLabels();
  EXPECT_EQ(labels, (std::vector<SymbolId>{5, 7}));
}

class PredicateTest : public ::testing::Test {
 protected:
  PredicateTest() : vocab_(MakeVocabulary()), g_(vocab_) {
    name_ = vocab_->Attr("name");
    year_ = vocab_->Attr("year");
    n1_ = g_.AddNode(vocab_->Label("N"));
    n2_ = g_.AddNode(vocab_->Label("N"));
    g_.SetNodeAttr(n1_, name_, vocab_->Value("alice"));
    g_.SetNodeAttr(n2_, name_, vocab_->Value("bob"));
    g_.SetNodeAttr(n1_, year_, vocab_->Value("1999"));
    g_.SetNodeAttr(n2_, year_, vocab_->Value("200"));
  }

  AttrPredicate Pred(VarId l, SymbolId lattr, CmpOp op, VarId r,
                     SymbolId rattr) {
    AttrPredicate p;
    p.lhs = AttrOperand::VarAttr(l, lattr);
    p.op = op;
    p.rhs = AttrOperand::VarAttr(r, rattr);
    return p;
  }

  VocabularyPtr vocab_;
  Graph g_;
  SymbolId name_, year_;
  NodeId n1_, n2_;
};

TEST_F(PredicateTest, NumericComparisonWhenBothNumeric) {
  // "1999" vs "200": numeric 1999 > 200 (lexicographic would say "1999" < "200").
  std::vector<NodeId> binding = {n1_, n2_};
  EXPECT_EQ(EvalPredicate(g_, Pred(0, year_, CmpOp::kGt, 1, year_), binding),
            PredVerdict::kTrue);
}

TEST_F(PredicateTest, LexicographicFallback) {
  std::vector<NodeId> binding = {n1_, n2_};
  EXPECT_EQ(EvalPredicate(g_, Pred(0, name_, CmpOp::kLt, 1, name_), binding),
            PredVerdict::kTrue);  // "alice" < "bob"
}

TEST_F(PredicateTest, UnknownWhileUnbound) {
  std::vector<NodeId> binding = {n1_, kInvalidNode};
  EXPECT_EQ(EvalPredicate(g_, Pred(0, name_, CmpOp::kEq, 1, name_), binding),
            PredVerdict::kUnknown);
}

TEST_F(PredicateTest, AbsentAttrFailsEquality) {
  SymbolId missing = vocab_->Attr("missing");
  std::vector<NodeId> binding = {n1_, n2_};
  EXPECT_EQ(
      EvalPredicate(g_, Pred(0, missing, CmpOp::kEq, 1, missing), binding),
      PredVerdict::kFalse);
}

TEST_F(PredicateTest, NeTrueWhenOneSideAbsent) {
  SymbolId missing = vocab_->Attr("missing");
  std::vector<NodeId> binding = {n1_, n2_};
  EXPECT_EQ(EvalPredicate(g_, Pred(0, name_, CmpOp::kNe, 1, missing), binding),
            PredVerdict::kTrue);
  EXPECT_EQ(
      EvalPredicate(g_, Pred(0, missing, CmpOp::kNe, 1, missing), binding),
      PredVerdict::kFalse);  // both absent: not different
}

TEST_F(PredicateTest, AbsentPresentUnaryOps) {
  SymbolId missing = vocab_->Attr("missing");
  std::vector<NodeId> binding = {n1_, n2_};
  AttrPredicate p;
  p.lhs = AttrOperand::VarAttr(0, missing);
  p.op = CmpOp::kAbsent;
  p.rhs = AttrOperand::Const(0);
  EXPECT_EQ(EvalPredicate(g_, p, binding), PredVerdict::kTrue);
  p.op = CmpOp::kPresent;
  EXPECT_EQ(EvalPredicate(g_, p, binding), PredVerdict::kFalse);
  p.lhs = AttrOperand::VarAttr(0, name_);
  EXPECT_EQ(EvalPredicate(g_, p, binding), PredVerdict::kTrue);
}

TEST_F(PredicateTest, ConstantComparison) {
  AttrPredicate p;
  p.lhs = AttrOperand::VarAttr(0, name_);
  p.op = CmpOp::kEq;
  p.rhs = AttrOperand::Const(vocab_->Value("alice"));
  std::vector<NodeId> binding = {n1_};
  EXPECT_EQ(EvalPredicate(g_, p, binding), PredVerdict::kTrue);
}

TEST_F(PredicateTest, NacNoEdge) {
  g_.AddEdge(n1_, n2_, vocab_->Label("e"));
  Nac nac;
  nac.kind = NacKind::kNoEdge;
  nac.src_var = 0;
  nac.dst_var = 1;
  nac.label = vocab_->Label("e");
  std::vector<NodeId> binding = {n1_, n2_};
  EXPECT_FALSE(EvalNac(g_, nac, binding));
  std::vector<NodeId> reversed = {n2_, n1_};
  EXPECT_TRUE(EvalNac(g_, nac, reversed));
}

TEST_F(PredicateTest, NacNoOutInEdge) {
  g_.AddEdge(n1_, n2_, vocab_->Label("e"));
  Nac out;
  out.kind = NacKind::kNoOutEdge;
  out.src_var = 0;
  out.label = vocab_->Label("e");
  Nac in;
  in.kind = NacKind::kNoInEdge;
  in.dst_var = 0;
  in.label = 0;  // any label
  std::vector<NodeId> b1 = {n1_};
  std::vector<NodeId> b2 = {n2_};
  EXPECT_FALSE(EvalNac(g_, out, b1));
  EXPECT_TRUE(EvalNac(g_, out, b2));
  EXPECT_TRUE(EvalNac(g_, in, b1));
  EXPECT_FALSE(EvalNac(g_, in, b2));
}

TEST_F(PredicateTest, NacIsolated) {
  Nac nac;
  nac.kind = NacKind::kNoIncident;
  nac.src_var = 0;
  NodeId lone = g_.AddNode(vocab_->Label("N"));
  std::vector<NodeId> b1 = {lone};
  EXPECT_TRUE(EvalNac(g_, nac, b1));
  g_.AddEdge(lone, n1_, vocab_->Label("e"));
  EXPECT_FALSE(EvalNac(g_, nac, b1));
}

}  // namespace
}  // namespace grepair
