// Dynamic (delta) repair tests: RunDelta fixes exactly the violations a
// post-repair edit stream introduced, at delta-proportional cost, and ends
// in the same clean state a full re-repair reaches.
#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "repair/engine.h"
#include "util/rng.h"

namespace grepair {
namespace {

DatasetBundle CleanRepairedKg(uint64_t seed = 11) {
  KgOptions gopt;
  gopt.num_persons = 400;
  gopt.num_cities = 50;
  gopt.num_countries = 10;
  gopt.num_orgs = 30;
  gopt.seed = seed;
  InjectOptions iopt;
  iopt.rate = 0.04;
  iopt.seed = seed + 5;
  auto b = MakeKgBundle(gopt, iopt);
  EXPECT_TRUE(b.ok());
  DatasetBundle bundle = std::move(b).value();
  RepairEngine engine;
  auto res = engine.Run(&bundle.graph, bundle.rules);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.value().remaining_violations, 0u);
  return bundle;
}

TEST(DynamicRepairTest, NoEditsNothingToDo) {
  DatasetBundle bundle = CleanRepairedKg();
  size_t mark = bundle.graph.JournalSize();
  RepairEngine engine;
  auto res = engine.RunDelta(&bundle.graph, bundle.rules, mark);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res.value().initial_violations, 0u);
  EXPECT_TRUE(res.value().applied.empty());
}

TEST(DynamicRepairTest, RepairsStreamedCorruption) {
  DatasetBundle bundle = CleanRepairedKg();
  Graph& g = bundle.graph;
  auto vocab = bundle.vocab;
  SymbolId knows = vocab->Label("knows");
  SymbolId person = vocab->Label("Person");

  // Stream: break a knows symmetry and add a self-contained new pair.
  size_t mark = g.JournalSize();
  std::vector<NodeId> persons(g.NodesWithLabel(person).begin(),
                              g.NodesWithLabel(person).end());
  ASSERT_GE(persons.size(), 2u);
  NodeId a = persons[0], b = persons[1];
  if (!g.HasEdge(a, b, knows)) {
    g.AddEdge(a, b, knows);  // one-directional: violates symmetry
  } else {
    EdgeId back = g.FindEdge(b, a, knows);
    ASSERT_NE(back, kInvalidEdge);
    g.RemoveEdge(back);
  }

  RepairEngine engine;
  auto res = engine.RunDelta(&g, bundle.rules, mark);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_GE(res.value().initial_violations, 1u);
  EXPECT_GE(res.value().applied.size(), 1u);
  EXPECT_EQ(CountViolations(g, bundle.rules), 0u);
}

TEST(DynamicRepairTest, MarkBeyondJournalRejected) {
  DatasetBundle bundle = CleanRepairedKg();
  RepairEngine engine;
  auto res = engine.RunDelta(&bundle.graph, bundle.rules,
                             bundle.graph.JournalSize() + 10);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kOutOfRange);
}

class DynamicEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DynamicEquivalence, DeltaRepairEndsClean) {
  // Property: after a random edit stream on a clean graph, RunDelta leaves
  // zero violations (verified by a full recount).
  DatasetBundle bundle = CleanRepairedKg(GetParam());
  Graph& g = bundle.graph;
  Rng rng(GetParam() * 31 + 7);
  auto vocab = bundle.vocab;
  SymbolId person = vocab->Label("Person");
  SymbolId city = vocab->Label("City");
  SymbolId knows = vocab->Label("knows");
  SymbolId born = vocab->Label("born_in");

  std::vector<NodeId> persons(g.NodesWithLabel(person).begin(),
                              g.NodesWithLabel(person).end());
  std::vector<NodeId> cities(g.NodesWithLabel(city).begin(),
                             g.NodesWithLabel(city).end());
  ASSERT_FALSE(persons.empty());
  ASSERT_FALSE(cities.empty());

  size_t mark = g.JournalSize();
  for (int k = 0; k < 6; ++k) {
    NodeId p = persons[rng.PickIndex(persons)];
    if (!g.NodeAlive(p)) continue;
    switch (rng.NextBounded(3)) {
      case 0: {  // asymmetric knows
        NodeId q = persons[rng.PickIndex(persons)];
        if (g.NodeAlive(q) && p != q && !g.HasEdge(p, q, knows))
          g.AddEdge(p, q, knows);
        break;
      }
      case 1: {  // extra birthplace (conflict)
        NodeId c = cities[rng.PickIndex(cities)];
        if (g.NodeAlive(c) && !g.HasEdge(p, c, born)) g.AddEdge(p, c, born);
        break;
      }
      default: {  // junk org
        g.AddNode(vocab->Label("Org"));
        break;
      }
    }
  }

  RepairEngine engine;
  auto res = engine.RunDelta(&g, bundle.rules, mark);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(CountViolations(g, bundle.rules), 0u) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicEquivalence,
                         ::testing::Range<uint64_t>(1, 9));

TEST(DynamicRepairTest, DeltaCostIndependentOfGraphSize) {
  // The delta path must not do full-graph detection work: expansions for a
  // single-edit delta stay far below a full detection's.
  DatasetBundle bundle = CleanRepairedKg();
  Graph& g = bundle.graph;
  auto vocab = bundle.vocab;
  SymbolId person = vocab->Label("Person");
  SymbolId knows = vocab->Label("knows");
  std::vector<NodeId> persons(g.NodesWithLabel(person).begin(),
                              g.NodesWithLabel(person).end());

  ViolationStore store;
  size_t full_expansions = 0;
  DetectAll(g, bundle.rules, &store, &full_expansions);

  size_t mark = g.JournalSize();
  NodeId a = persons[3], b = persons[4];
  if (!g.HasEdge(a, b, knows)) g.AddEdge(a, b, knows);
  RepairEngine engine;
  auto res = engine.RunDelta(&g, bundle.rules, mark);
  ASSERT_TRUE(res.ok());
  EXPECT_LT(res.value().matcher_expansions, full_expansions / 5);
}

}  // namespace
}  // namespace grepair
