// Shared helpers for the benchmark harnesses (T1-T3, F4-F8, M9).
// Every bench binary runs with no arguments and prints paper-style rows.
#ifndef GREPAIR_BENCH_BENCH_COMMON_H_
#define GREPAIR_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <ctime>
#include <string>
#include <thread>

#include "eval/experiment.h"
#include "obs/build_info.h"
#include "util/table_writer.h"

namespace grepair {
namespace bench {

/// Prints the self-describing run header: one JSON line with the bench
/// name, wall-clock start time (UTC), the machine's thread count and the
/// build provenance (git sha, build type, compiler — obs/build_info.h), so
/// a saved bench output identifies when, where and from WHAT it was
/// produced. Benches that sweep a thread budget (bench_parallel_scaling)
/// also report the per-row thread count in their JSON rows. `extra_json`
/// appends raw `"key":value` fields (comma-joined by the caller) — used to
/// record whether the snapshot read path is active so perf trajectories
/// stay comparable across PRs.
inline void PrintBenchHeader(const std::string& name,
                             const std::string& extra_json = "") {
  std::time_t now = std::time(nullptr);
  char ts[32] = "unknown";
  std::tm tm_utc{};
  if (gmtime_r(&now, &tm_utc) != nullptr)
    std::strftime(ts, sizeof(ts), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  std::printf("{\"bench\":\"%s\",\"wall_clock\":\"%s\","
              "\"hardware_threads\":%u,%s%s%s}\n",
              name.c_str(), ts, std::thread::hardware_concurrency(),
              obs::BuildInfoJsonFields().c_str(),
              extra_json.empty() ? "" : ",", extra_json.c_str());
}

inline DatasetBundle MustKgBundle(const KgOptions& gopt,
                                  const InjectOptions& iopt) {
  auto b = MakeKgBundle(gopt, iopt);
  if (!b.ok()) {
    std::fprintf(stderr, "KG bundle failed: %s\n",
                 b.status().ToString().c_str());
    std::abort();
  }
  return std::move(b).value();
}

inline DatasetBundle MustSocialBundle(const SocialOptions& gopt,
                                      const InjectOptions& iopt) {
  auto b = MakeSocialBundle(gopt, iopt);
  if (!b.ok()) {
    std::fprintf(stderr, "social bundle failed: %s\n",
                 b.status().ToString().c_str());
    std::abort();
  }
  return std::move(b).value();
}

inline DatasetBundle MustCitationBundle(const CitationOptions& gopt,
                                        const InjectOptions& iopt) {
  auto b = MakeCitationBundle(gopt, iopt);
  if (!b.ok()) {
    std::fprintf(stderr, "citation bundle failed: %s\n",
                 b.status().ToString().c_str());
    std::abort();
  }
  return std::move(b).value();
}

inline MethodOutcome MustRun(const DatasetBundle& bundle,
                             const std::string& method,
                             const RepairOptions& opts = {}) {
  auto out = RunMethod(bundle, method, opts);
  if (!out.ok()) {
    std::fprintf(stderr, "method %s failed: %s\n", method.c_str(),
                 out.status().ToString().c_str());
    std::abort();
  }
  return std::move(out).value();
}

}  // namespace bench
}  // namespace grepair

#endif  // GREPAIR_BENCH_BENCH_COMMON_H_
