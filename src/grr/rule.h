// Graph-Repairing Rules (GRRs): the paper's primary formalism. A rule is a
// pattern (MATCH/WHERE) plus one of seven repair operations (ACTION), tagged
// with the semantic error class it addresses.
#ifndef GREPAIR_GRR_RULE_H_
#define GREPAIR_GRR_RULE_H_

#include <string>
#include <vector>

#include "graph/error_class.h"
#include "match/pattern.h"
#include "util/status.h"

namespace grepair {

/// The seven repair operations of a GRR.
///   1 kAddNode  — create a missing node, linked to a matched anchor
///   2 kAddEdge  — create a missing edge between matched nodes
///   3 kDelNode  — delete an erroneous node (with its incident edges)
///   4 kDelEdge  — delete an erroneous edge
///   5 kUpdNode  — update a node: relabel and/or set an attribute
///   6 kUpdEdge  — relabel an edge
///   7 kMerge    — merge two matched nodes denoting the same entity
enum class ActionKind : uint8_t {
  kAddNode,
  kAddEdge,
  kDelNode,
  kDelEdge,
  kUpdNode,
  kUpdEdge,
  kMerge,
};

std::string_view ActionKindName(ActionKind k);

/// The parameters of an action, interpreted against a match of the rule's
/// pattern. Field use per kind:
///   kAddEdge:  (var)-[label]->(var2)
///   kAddNode:  new node labeled `node_label`, connected to matched anchor
///              `var` by an edge labeled `label`; `new_node_is_src` gives
///              the direction (new->anchor when true)
///   kDelEdge:  pattern edge `edge_idx`
///   kDelNode:  node var `var`
///   kUpdNode:  node var `var`; relabel to `label` (label!=0) and/or set
///              attribute `attr` = `value` (attr!=0)
///   kUpdEdge:  pattern edge `edge_idx`, relabel to `label`
///   kMerge:    vars `var` and `var2`; the engine keeps the lower node id
///              (deterministic survivor policy)
struct RepairAction {
  ActionKind kind;
  VarId var = kNoVar;
  VarId var2 = kNoVar;
  size_t edge_idx = SIZE_MAX;
  SymbolId label = 0;
  SymbolId node_label = 0;
  SymbolId attr = 0;
  SymbolId value = 0;
  bool new_node_is_src = true;
};

using RuleId = uint32_t;

/// One graph-repairing rule.
class Rule {
 public:
  Rule(std::string name, ErrorClass cls, Pattern pattern, RepairAction action)
      : name_(std::move(name)),
        cls_(cls),
        pattern_(std::move(pattern)),
        action_(action) {}

  const std::string& name() const { return name_; }
  ErrorClass error_class() const { return cls_; }
  const Pattern& pattern() const { return pattern_; }
  const RepairAction& action() const { return action_; }

  /// Rules with higher priority are preferred when fixes tie on cost.
  double priority() const { return priority_; }
  void set_priority(double p) { priority_ = p; }

  /// Human-readable rendering.
  std::string ToString(const Vocabulary& vocab) const;

 private:
  std::string name_;
  ErrorClass cls_;
  Pattern pattern_;
  RepairAction action_;
  double priority_ = 1.0;
};

/// An ordered collection of uniquely named rules.
class RuleSet {
 public:
  /// Adds a rule; fails on duplicate name.
  Status Add(Rule rule);

  size_t size() const { return rules_.size(); }
  bool empty() const { return rules_.empty(); }
  const Rule& operator[](RuleId id) const { return rules_[id]; }
  const std::vector<Rule>& rules() const { return rules_; }

  /// Finds a rule id by name.
  Result<RuleId> Find(std::string_view name) const;

  /// Keeps only the first `n` rules (used by the rule-count sweep bench).
  RuleSet Prefix(size_t n) const;

 private:
  std::vector<Rule> rules_;
};

}  // namespace grepair

#endif  // GREPAIR_GRR_RULE_H_
