// Build provenance, baked in at configure time (CMake generates
// obs/build_info_gen.h from src/obs/build_info_gen.h.in): git sha, build
// type and compiler. Surfaced in the serve greeting, `grepair --version`,
// every bench JSON header and the Prometheus exposition, so any artifact —
// a CI bench JSON, a trace, a metrics snapshot — is attributable to the
// commit that produced it.
#ifndef GREPAIR_OBS_BUILD_INFO_H_
#define GREPAIR_OBS_BUILD_INFO_H_

#include <string>

namespace grepair {
namespace obs {

class MetricsRegistry;

/// Short git sha of the configured checkout ("unknown" outside git).
const char* BuildGitSha();
/// CMAKE_BUILD_TYPE at configure time ("" when unset).
const char* BuildType();
/// Compiler id + version, e.g. "GNU 12.2.0".
const char* BuildCompiler();

/// One-line human form: "grepair <sha> (<build type>, <compiler>)".
std::string BuildInfoLine();

/// Raw JSON fields (no braces), for bench headers:
/// "git_sha":"...","build_type":"...","compiler":"..."
std::string BuildInfoJsonFields();

/// Registers grepair_build_info{sha=...,build=...,compiler=...} 1 — the
/// standard Prometheus build-provenance idiom — in `registry`, or in
/// MetricsRegistry::Global() when null. Idempotent.
void RegisterBuildInfoMetric(MetricsRegistry* registry = nullptr);

}  // namespace obs
}  // namespace grepair

#endif  // GREPAIR_OBS_BUILD_INFO_H_
