// The repair engine: detect violations of a GRR set, choose fixes under the
// configured strategy, apply until a fixpoint (no violations) or a budget is
// exhausted. Detection can be incremental (delta-anchored around each edit)
// or full re-detection — the central efficiency comparison of the paper.
#ifndef GREPAIR_REPAIR_ENGINE_H_
#define GREPAIR_REPAIR_ENGINE_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "grr/rule.h"
#include "repair/fix.h"
#include "repair/strategy.h"
#include "repair/violation.h"
#include "util/status.h"

namespace grepair {

/// Engine configuration.
struct RepairOptions {
  RepairStrategy strategy = RepairStrategy::kGreedy;
  /// Delta-anchored re-detection after edits (vs full re-detection).
  bool incremental = true;
  /// Hard caps; exceeded runs return partially repaired graphs with
  /// budget_exhausted set (this is how non-terminating rule sets surface).
  size_t max_fixes = 1'000'000;
  size_t max_rounds = 10'000;
  /// Edge attribute carrying evidence confidence ("" disables weighting).
  std::string confidence_attr = "conf";
  /// Cost model for fix selection and the reported repair cost.
  CostModel cost_model;
  /// Track graph fingerprints and stop when a state repeats (oscillation).
  bool detect_oscillation = false;
  /// Naive-strategy shuffle seed (arbitrary order is seeded for
  /// reproducibility).
  uint64_t seed = 1;
  /// Exact-strategy budgets.
  size_t exact_max_expansions = 500'000;
  size_t exact_max_depth = 64;
  /// Worker threads for full (re-)detection — the initial detection of
  /// incremental mode and every full re-detection route through
  /// parallel::ParallelDetector when this exceeds 1 (0 = hardware
  /// concurrency). Results are bit-identical to the sequential path; only
  /// wall-clock and the expansions statistic change. Delta-anchored
  /// re-detection stays sequential (it is already O(delta)).
  size_t num_threads = 1;
};

/// Outcome of a repair run.
struct RepairResult {
  std::vector<AppliedFix> applied;
  size_t rounds = 0;
  size_t initial_violations = 0;
  size_t remaining_violations = 0;  ///< from a final full re-detection
  double repair_cost = 0.0;         ///< weighted journal cost of all edits
  double detect_ms = 0.0;           ///< time in (re-)detection
  double total_ms = 0.0;
  size_t matcher_expansions = 0;
  bool budget_exhausted = false;
  bool oscillation_detected = false;
};

/// True when multi-threaded full detection builds a read-optimized
/// GraphSnapshot per pass and fans matching out over it (sequential
/// detection reads the live graph directly). Benchmarks record this in
/// their JSON headers so perf trajectories stay comparable across PRs.
inline constexpr bool kSnapshotDetectReads = true;

/// Runs detection only: fills `store` with every violation of `rules` in
/// `g`. Returns the number of live violations. With num_threads > 1 the
/// matching builds one immutable GraphSnapshot for the pass and fans out
/// over a thread pool reading it; the store contents and order are
/// identical to the sequential result for any thread count.
///
/// `snapshot`, when non-null, must be a snapshot VIEW of `g`'s exact
/// current state (a fresh-built or delta-patched GraphSnapshot, or a
/// ShardedSnapshot — anything whose IsSnapshotView() is true); the pass
/// then reads it instead of building its own, so callers that repeatedly
/// detect over an UNCHANGED graph (eval loops, thread-count sweeps,
/// benchmarks) pay the O(V+E) snapshot cost once instead of per call.
/// Reads over a snapshot are bit-identical to reads over the live graph —
/// for a sharded snapshot across every shard count — so results do not
/// depend on whether (or which) one is supplied.
size_t DetectAll(const GraphView& g, const RuleSet& rules,
                 ViolationStore* store,
                 size_t* expansions = nullptr, size_t num_threads = 1,
                 const GraphView* snapshot = nullptr);

/// Counts violations without keeping them. Same `snapshot` contract as
/// DetectAll.
size_t CountViolations(const GraphView& g, const RuleSet& rules,
                       size_t num_threads = 1,
                       const GraphView* snapshot = nullptr);

/// Delta-anchored re-detection: adds, for every rule, each violation the
/// edit slice `delta` can have introduced to `store`, costed with
/// `model`/`conf_attr` exactly like full detection. Sequential; the seeding
/// step of RunDelta, exposed for the serving layer (src/serve/), whose
/// batched path routes the same search through
/// parallel::ParallelDeltaDetector instead.
void DetectDelta(const GraphView& g, const RuleSet& rules,
                 const std::vector<EditEntry>& delta, ViolationStore* store,
                 const CostModel& model, SymbolId conf_attr,
                 size_t* expansions);

/// The engine. Stateless across runs; all state lives in the Graph and the
/// run-local stores.
class RepairEngine {
 public:
  explicit RepairEngine(RepairOptions options = {});

  /// Repairs `g` in place against `rules`. The journal after the call holds
  /// every edit (cost-accounted in the result).
  Result<RepairResult> Run(Graph* g, const RuleSet& rules) const;

  /// Dynamic repair: assumes `g` was consistent at journal mark
  /// `since_mark` and repairs ONLY the violations introduced by the edits
  /// journaled after it (plus any repair cascades). Detection cost is
  /// proportional to the delta, not |G| — the API a live system uses to
  /// keep a graph clean under a stream of updates. Greedy/incremental by
  /// construction (the strategy option is ignored).
  Result<RepairResult> RunDelta(Graph* g, const RuleSet& rules,
                                size_t since_mark) const;

  const RepairOptions& options() const { return options_; }

 private:
  Result<RepairResult> RunGreedy(Graph* g, const RuleSet& rules,
                                 const std::vector<EditEntry>* seed_delta =
                                     nullptr) const;
  Result<RepairResult> RunNaive(Graph* g, const RuleSet& rules) const;
  Result<RepairResult> RunBatch(Graph* g, const RuleSet& rules) const;
  Result<RepairResult> RunExact(Graph* g, const RuleSet& rules) const;

  SymbolId ConfAttr(const Graph& g) const;

  RepairOptions options_;
};

}  // namespace grepair

#endif  // GREPAIR_REPAIR_ENGINE_H_
