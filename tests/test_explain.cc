// Repair-provenance tests: fix explanations, the repair report, and the
// DOT diff rendering.
#include <gtest/gtest.h>

#include "grr/rule_parser.h"
#include "repair/engine.h"
#include "repair/explain.h"

namespace grepair {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest() : vocab_(MakeVocabulary()), g_(vocab_) {
    auto rules = ParseRules(R"(
      RULE knows_symmetric CLASS incomplete
      MATCH (x:Person)-[knows]->(y:Person)
      WHERE NOT EDGE (y)-[knows]->(x)
      ACTION ADD_EDGE (y)-[knows]->(x)

      RULE no_self_knows CLASS conflict
      MATCH (x:Person)-[e:knows]->(x)
      ACTION DEL_EDGE e

      RULE dup_person CLASS redundant
      MATCH (x:Person), (y:Person)
      WHERE x.name = y.name
      ACTION MERGE (x, y)
    )",
                            vocab_);
    EXPECT_TRUE(rules.ok());
    rules_ = std::move(rules).value();
  }

  VocabularyPtr vocab_;
  Graph g_;
  RuleSet rules_;
};

TEST_F(ExplainTest, FixExplanationsNameEverything) {
  SymbolId person = vocab_->Label("Person");
  SymbolId knows = vocab_->Label("knows");
  SymbolId name = vocab_->Attr("name");
  NodeId a = g_.AddNode(person), b = g_.AddNode(person), c = g_.AddNode(person);
  g_.SetNodeAttr(a, name, vocab_->Value("alice"));
  g_.SetNodeAttr(b, name, vocab_->Value("bob"));
  g_.SetNodeAttr(c, name, vocab_->Value("alice"));  // duplicate of a
  g_.AddEdge(a, b, knows);
  g_.AddEdge(b, b, knows);  // self-loop
  g_.ResetJournal();

  RepairEngine engine;
  auto res = engine.Run(&g_, rules_);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res.value().remaining_violations, 0u);

  bool saw_add = false, saw_del = false, saw_merge = false;
  for (const AppliedFix& f : res.value().applied) {
    std::string s = ExplainFix(g_, rules_, f);
    if (f.kind == ActionKind::kAddEdge) {
      saw_add = true;
      EXPECT_NE(s.find("[incomplete] knows_symmetric"), std::string::npos) << s;
      EXPECT_NE(s.find("added knows edge"), std::string::npos) << s;
    }
    if (f.kind == ActionKind::kDelEdge) {
      saw_del = true;
      EXPECT_NE(s.find("[conflict] no_self_knows"), std::string::npos) << s;
      EXPECT_NE(s.find("\"bob\""), std::string::npos) << s;
    }
    if (f.kind == ActionKind::kMerge) {
      saw_merge = true;
      EXPECT_NE(s.find("merged"), std::string::npos) << s;
      EXPECT_NE(s.find("\"alice\""), std::string::npos) << s;
    }
  }
  EXPECT_TRUE(saw_add);
  EXPECT_TRUE(saw_del);
  EXPECT_TRUE(saw_merge);
}

TEST_F(ExplainTest, RepairReportAggregates) {
  SymbolId person = vocab_->Label("Person");
  SymbolId knows = vocab_->Label("knows");
  NodeId a = g_.AddNode(person), b = g_.AddNode(person);
  g_.AddEdge(a, b, knows);
  g_.ResetJournal();

  RepairEngine engine;
  auto res = engine.Run(&g_, rules_);
  ASSERT_TRUE(res.ok());
  std::string report = ExplainRepair(g_, rules_, res.value());
  EXPECT_NE(report.find("by class:"), std::string::npos);
  EXPECT_NE(report.find("incomplete"), std::string::npos);
  EXPECT_NE(report.find("knows_symmetric"), std::string::npos);
  EXPECT_NE(report.find("1 fixes"), std::string::npos);
}

TEST_F(ExplainTest, ReportTruncatesLongFixLists) {
  SymbolId person = vocab_->Label("Person");
  SymbolId knows = vocab_->Label("knows");
  std::vector<NodeId> nodes;
  for (int i = 0; i < 30; ++i) nodes.push_back(g_.AddNode(person));
  for (int i = 0; i + 1 < 30; i += 2) g_.AddEdge(nodes[i], nodes[i + 1], knows);
  g_.ResetJournal();
  RepairEngine engine;
  auto res = engine.Run(&g_, rules_);
  ASSERT_TRUE(res.ok());
  ASSERT_GT(res.value().applied.size(), 5u);
  std::string report = ExplainRepair(g_, rules_, res.value(), /*max_fixes=*/5);
  EXPECT_NE(report.find("... and"), std::string::npos);
}

TEST_F(ExplainTest, DiffDotMarksAddedAndRemoved) {
  SymbolId person = vocab_->Label("Person");
  SymbolId knows = vocab_->Label("knows");
  NodeId a = g_.AddNode(person), b = g_.AddNode(person);
  g_.AddEdge(a, b, knows);   // will trigger symmetric add (green)
  g_.AddEdge(a, a, knows);   // self loop: will be deleted (red ghost)
  g_.ResetJournal();

  RepairEngine engine;
  auto res = engine.Run(&g_, rules_);
  ASSERT_TRUE(res.ok());
  std::string dot = RepairDiffDot(g_, res.value());
  EXPECT_NE(dot.find("color=green"), std::string::npos) << dot;
  EXPECT_NE(dot.find("color=red, style=dashed"), std::string::npos) << dot;
  EXPECT_NE(dot.find("digraph repair"), std::string::npos);
}

TEST_F(ExplainTest, BaselineFixesExplainedWithoutRuleSet) {
  AppliedFix f;
  f.rule = 0xFFFFFFF0u;  // baseline rule id
  f.kind = ActionKind::kDelNode;
  f.node_a = g_.AddNode(vocab_->Label("Person"));
  std::string s = ExplainFix(g_, rules_, f);
  EXPECT_NE(s.find("baseline"), std::string::npos);
  EXPECT_NE(s.find("deleted"), std::string::npos);
}

}  // namespace
}  // namespace grepair
