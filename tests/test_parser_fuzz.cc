// Parser robustness fuzzing (TEST_P sweeps): random mutations of valid DSL
// sources and random garbage must NEVER crash the parser — every input
// yields either a parsed rule set or a clean ParseError/InvalidArgument.
#include <gtest/gtest.h>

#include "grr/rule_parser.h"
#include "grr/standard_rules.h"
#include "util/rng.h"

namespace grepair {
namespace {

// Any outcome is fine except a crash; failures must carry a parse-ish code.
void MustNotCrash(const std::string& input) {
  auto vocab = MakeVocabulary();
  auto result = ParseRules(input, vocab);
  if (!result.ok()) {
    StatusCode code = result.status().code();
    EXPECT_TRUE(code == StatusCode::kParseError ||
                code == StatusCode::kInvalidArgument ||
                code == StatusCode::kAlreadyExists)
        << result.status().ToString();
  }
}

class MutationFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MutationFuzz, MutatedDslNeverCrashes) {
  Rng rng(GetParam());
  const char* sources[] = {kKgRulesDsl, kSocialRulesDsl, kCitationRulesDsl};
  std::string text = sources[rng.NextBounded(3)];

  size_t n_mutations = 1 + rng.NextBounded(8);
  for (size_t i = 0; i < n_mutations && !text.empty(); ++i) {
    size_t pos = rng.NextBounded(text.size());
    switch (rng.NextBounded(4)) {
      case 0:  // delete a char
        text.erase(pos, 1);
        break;
      case 1:  // flip to random printable
        text[pos] = static_cast<char>(32 + rng.NextBounded(95));
        break;
      case 2:  // duplicate a slice
        text.insert(pos, text.substr(pos, rng.NextBounded(20)));
        break;
      default:  // truncate
        text.resize(pos);
        break;
    }
  }
  MustNotCrash(text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz,
                         ::testing::Range<uint64_t>(0, 120));

class GarbageFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GarbageFuzz, RandomBytesNeverCrash) {
  Rng rng(GetParam() * 977 + 5);
  std::string text;
  size_t len = rng.NextBounded(400);
  for (size_t i = 0; i < len; ++i) {
    // Mostly printable with some structure-ish characters to get deeper.
    const char* pool = "()[]{}<>-*=!.,:\"RULECLASSMATCHWHEREACTION \n\tabcxyz_0123456789";
    text += pool[rng.NextBounded(61)];
  }
  MustNotCrash(text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GarbageFuzz,
                         ::testing::Range<uint64_t>(0, 80));

TEST(ParserEdgeCases, EmptyAndWhitespaceInputs) {
  auto vocab = MakeVocabulary();
  EXPECT_TRUE(ParseRules("", vocab).ok());            // empty set is fine
  EXPECT_TRUE(ParseRules("   \n\t  ", vocab).ok());
  EXPECT_TRUE(ParseRules("# only a comment\n", vocab).ok());
  EXPECT_EQ(ParseRules("", vocab).value().size(), 0u);
}

TEST(ParserEdgeCases, VeryLongIdentifier) {
  auto vocab = MakeVocabulary();
  std::string long_name(10000, 'a');
  std::string text = "RULE " + long_name +
                     " CLASS conflict\nMATCH (x:A)-[e:l]->(y:B)\n"
                     "ACTION DEL_EDGE e\n";
  auto r = ParseRules(text, vocab);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0].name().size(), 10000u);
}

TEST(ParserEdgeCases, DeeplyNestedNoise) {
  auto vocab = MakeVocabulary();
  std::string text(5000, '(');
  MustNotCrash(text);
}

}  // namespace
}  // namespace grepair
