// Scoped trace spans: OBS_SPAN("commit.detect") records one duration event
// into a bounded per-thread ring buffer, flushable as Chrome trace-event
// JSON (loadable in Perfetto / chrome://tracing).
//
// Cost model (DESIGN.md "Observability"):
//   - tracing DISABLED (the default): a span is one relaxed atomic load —
//     no clock read, no allocation, nothing recorded;
//   - tracing ENABLED: two steady_clock reads plus one ring slot write
//     under the ring's own mutex (uncontended except during a flush);
//   - compiled OUT entirely with -DGREPAIR_OBS_DISABLED: the macros expand
//     to nothing.
//
// Each thread owns one ring (registered on first span, capacity fixed at
// creation, oldest events overwritten once full), so recording never
// crosses threads. Flushing walks every ring and merges.
#ifndef GREPAIR_OBS_TRACE_H_
#define GREPAIR_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace grepair {
namespace obs {

/// Runtime switch; spans record only while enabled. Relaxed — a span that
/// straddles the flip may be dropped, never torn.
bool TracingEnabled();
void SetTracingEnabled(bool enabled);

/// Microseconds since the process trace epoch (first use), steady clock.
uint64_t NowUs();

/// Ring capacity (events per thread) for rings created AFTER the call;
/// existing rings keep theirs. Test hook + memory bound (default 65536).
void SetTraceRingCapacity(size_t events);

/// Records one completed span. `arg` < 0 means no argument; otherwise it
/// is emitted as "args":{"<arg_key>":arg}. `name` and `arg_key` must be
/// string literals (stored by pointer).
void RecordSpan(const char* name, uint64_t start_us, uint64_t dur_us,
                int64_t arg = -1, const char* arg_key = nullptr);

/// Events currently retained across all thread rings.
size_t TraceEventCount();

/// Drops every retained event (rings stay registered). Used at trace-
/// session start so a flush covers exactly one session.
void ClearTrace();

/// All retained events as a Chrome trace-event JSON array, sorted by
/// timestamp: [{"name":...,"ph":"X","pid":1,"tid":N,"ts":...,"dur":...},...]
std::string ChromeTraceJson();

/// Writes ChromeTraceJson() to `path`; returns false on I/O failure.
bool WriteChromeTrace(const std::string& path);

/// RAII span. Reads the clock only while tracing is enabled at
/// construction; destruction records iff construction armed it.
class Span {
 public:
  explicit Span(const char* name, int64_t arg = -1,
                const char* arg_key = nullptr)
      : name_(nullptr) {
    if (TracingEnabled()) {
      name_ = name;
      arg_ = arg;
      arg_key_ = arg_key;
      start_us_ = NowUs();
    }
  }
  ~Span() {
    if (name_ != nullptr)
      RecordSpan(name_, start_us_, NowUs() - start_us_, arg_, arg_key_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* arg_key_ = nullptr;
  int64_t arg_ = -1;
  uint64_t start_us_ = 0;
};

/// Steady-clock stopwatch in the obs time base — the serving path's one
/// timing idiom (bench binaries keep util/timer.h). Readings feed
/// BatchResult fields and registry histograms.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void Reset() { start_ = Clock::now(); }
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace obs
}  // namespace grepair

#ifdef GREPAIR_OBS_DISABLED
#define OBS_SPAN(name)
#define OBS_SPAN_ARG(name, key, value)
#else
#define GREPAIR_OBS_CONCAT_INNER(a, b) a##b
#define GREPAIR_OBS_CONCAT(a, b) GREPAIR_OBS_CONCAT_INNER(a, b)
/// Traces the enclosing scope as one span named `name` (string literal).
#define OBS_SPAN(name) \
  ::grepair::obs::Span GREPAIR_OBS_CONCAT(obs_span_, __LINE__)(name)
/// Same, with one integer argument (e.g. OBS_SPAN_ARG("shard.patch",
/// "shard", s)) emitted into the event's args.
#define OBS_SPAN_ARG(name, key, value)                 \
  ::grepair::obs::Span GREPAIR_OBS_CONCAT(obs_span_, __LINE__)( \
      name, static_cast<int64_t>(value), key)
#endif  // GREPAIR_OBS_DISABLED

#endif  // GREPAIR_OBS_TRACE_H_
