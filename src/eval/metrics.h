// Repair-quality metrics: compare the fixes a method applied against the
// injected ground truth, at the fix level (precision / recall / F1), plus
// violation elimination and repair distance.
#ifndef GREPAIR_EVAL_METRICS_H_
#define GREPAIR_EVAL_METRICS_H_

#include <vector>

#include "graph/error_injector.h"
#include "repair/fix.h"

namespace grepair {

struct QualityMetrics {
  size_t expected_facts = 0;    ///< injected errors
  size_t matched_facts = 0;     ///< errors whose expected repair happened
  size_t countable_fixes = 0;   ///< applied fixes attributable to the input
  size_t correct_fixes = 0;     ///< countable fixes matching some fact
  size_t consequential_fixes = 0;  ///< fixes on repair-created elements
  double precision = 0.0;       ///< correct / countable
  double recall = 0.0;          ///< matched / expected
  double f1 = 0.0;
};

/// Evaluates `applied` against `truth`.
///
/// - A fact is MATCHED when some applied fix realizes it (see the per-kind
///   matching rules in the implementation).
/// - A fix is CORRECT when it realizes at least one fact.
/// - Fixes that touch nodes created during repair (id >= `repair_node_bound`,
///   the corrupted graph's node-id bound) are *consequential* — cascading
///   repairs on elements the engine itself created — and are excluded from
///   the precision denominator.
///
/// `repaired` is the post-repair graph (used for existence checks of
/// ADD_NODE facts).
QualityMetrics EvaluateRepair(const Graph& repaired,
                              const std::vector<AppliedFix>& applied,
                              const InjectReport& truth,
                              NodeId repair_node_bound);

}  // namespace grepair

#endif  // GREPAIR_EVAL_METRICS_H_
