#include "storage/checkpoint.h"

#include <algorithm>
#include <cstdio>

#include "storage/wal.h"
#include "util/crc32c.h"
#include "util/strings.h"

namespace grepair {
namespace storage {

namespace {

bool ParsePadded20(const std::string& name, size_t at, uint64_t* v) {
  uint64_t out = 0;
  for (size_t i = at; i < at + 20; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    out = out * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *v = out;
  return true;
}

}  // namespace

std::string CheckpointName(uint64_t seq) {
  return StrFormat("checkpoint-%020llu.ckpt",
                   static_cast<unsigned long long>(seq));
}

bool ParseCheckpointName(const std::string& name, uint64_t* seq) {
  if (name.size() != 36 || name.rfind("checkpoint-", 0) != 0 ||
      name.compare(31, 5, ".ckpt") != 0)
    return false;
  return ParsePadded20(name, 11, seq);
}

Status WriteCheckpoint(Fs* fs, const std::string& dir, uint64_t seq,
                       const std::string& payload) {
  std::string data = StrFormat(
      "# grepair checkpoint v1 seq=%llu len=%zu crc=%08x\n",
      static_cast<unsigned long long>(seq), payload.size(),
      Crc32cMask(Crc32c(payload.data(), payload.size())));
  data += payload;
  return WriteFileAtomic(fs, dir + "/" + CheckpointName(seq), data);
}

Result<std::string> ReadCheckpoint(Fs* fs, const std::string& path,
                                   uint64_t expected_seq) {
  GREPAIR_ASSIGN_OR_RETURN(std::string data, fs->ReadFile(path));
  size_t nl = data.find('\n');
  if (nl == std::string::npos)
    return Status::DataLoss(path + ": missing checkpoint header");
  unsigned long long seq = 0;
  size_t len = 0;
  unsigned crc = 0;
  // sscanf is safe here: the format pins every field and %x/%llu/%zu stop
  // at the newline because it is not part of any conversion.
  if (std::sscanf(data.c_str(), "# grepair checkpoint v1 seq=%llu len=%zu "
                                "crc=%8x\n",
                  &seq, &len, &crc) != 3)
    return Status::DataLoss(path + ": bad checkpoint header");
  if (seq != expected_seq)
    return Status::DataLoss(
        StrFormat("%s: header seq %llu does not match file name", path.c_str(),
                  seq));
  std::string payload = data.substr(nl + 1);
  if (payload.size() != len)
    return Status::DataLoss(
        StrFormat("%s: payload is %zu bytes, header says %zu", path.c_str(),
                  payload.size(), len));
  if (Crc32cMask(Crc32c(payload.data(), payload.size())) != crc)
    return Status::DataLoss(path + ": payload crc mismatch");
  return payload;
}

Result<std::vector<uint64_t>> ListCheckpoints(Fs* fs, const std::string& dir) {
  GREPAIR_ASSIGN_OR_RETURN(std::vector<std::string> names, fs->ListDir(dir));
  std::vector<uint64_t> seqs;
  for (const std::string& name : names) {
    uint64_t seq = 0;
    if (ParseCheckpointName(name, &seq)) seqs.push_back(seq);
  }
  std::sort(seqs.rbegin(), seqs.rend());
  return seqs;
}

size_t TrimStorageDir(Fs* fs, const std::string& dir, size_t keep) {
  auto listed = fs->ListDir(dir);
  if (!listed.ok()) return 0;
  std::vector<uint64_t> ckpts;
  std::vector<uint64_t> segments;
  for (const std::string& name : listed.value()) {
    uint64_t seq = 0;
    if (ParseCheckpointName(name, &seq)) ckpts.push_back(seq);
    else if (ParseWalSegmentName(name, &seq)) segments.push_back(seq);
  }
  std::sort(ckpts.rbegin(), ckpts.rend());
  std::sort(segments.begin(), segments.end());

  size_t removed = 0;
  for (size_t i = keep; i < ckpts.size(); ++i)
    if (fs->RemoveFile(dir + "/" + CheckpointName(ckpts[i])).ok()) ++removed;

  if (ckpts.empty()) return removed;
  // Oldest batch any retained checkpoint needs replayed: one past the
  // oldest retained checkpoint's seq.
  const uint64_t need_from = ckpts[std::min(keep, ckpts.size()) - 1] + 1;
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    // Segment i covers [segments[i], segments[i+1]); removable when the
    // whole range predates need_from. The newest segment always stays.
    if (segments[i + 1] <= need_from) {
      if (fs->RemoveFile(dir + "/" + WalSegmentName(segments[i])).ok())
        ++removed;
    }
  }
  return removed;
}

}  // namespace storage
}  // namespace grepair
