#include "match/plan.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "graph/vocabulary.h"
#include "obs/metrics.h"

namespace grepair {

namespace {

// Plan-layer instruments. Compiles and cache decisions are per-pass events
// (not per-expansion), so they add straight into the global registry.
struct PlanMetrics {
  obs::Counter* compiles;
  obs::Counter* compile_us;
  obs::Counter* cache_hits;
  obs::Counter* cache_misses;
  obs::Counter* cache_revalidations;
};

PlanMetrics& Metrics() {
  static PlanMetrics m = [] {
    auto& reg = obs::MetricsRegistry::Global();
    return PlanMetrics{
        reg.GetCounter("grepair_plan_compiles_total",
                       "Match plans compiled (pattern x view)."),
        reg.GetCounter("grepair_plan_compile_us_total",
                       "Microseconds spent compiling match plans."),
        reg.GetCounter("grepair_plan_cache_hits_total",
                       "Plan cache lookups served by the cached generation."),
        reg.GetCounter("grepair_plan_cache_misses_total",
                       "Plan cache lookups that compiled a fresh plan."),
        reg.GetCounter(
            "grepair_plan_cache_revalidations_total",
            "Plan cache lookups that kept a prior-generation plan after "
            "verifying its variable orders against the new snapshot.")};
  }();
  return m;
}

// The step list for one anchor shape: variable order from the shared
// ordering policy, per-step candidate source and hoisted checks derived
// purely from the pattern structure given the bound-set sequence.
PlanBody CompileBody(const Pattern& p, const GraphView& g, uint32_t mask) {
  PlanBody body;
  body.anchor_mask = mask;
  uint32_t bound = mask;
  const auto is_bound = [&bound](VarId v) { return (bound >> v) & 1u; };
  while (true) {
    const VarId var = PickNextVarOrdered(g, p, is_bound);
    if (var == kNoVar) break;
    PlanStep step;
    step.var = var;
    step.label = p.nodes()[var].label;

    for (size_t i = 0; i < p.edges().size(); ++i) {
      const auto& pe = p.edges()[i];
      if (pe.src == var && pe.dst == var) {
        step.self_loops.push_back(static_cast<uint32_t>(i));
      } else if (pe.dst == var && pe.src != var && is_bound(pe.src)) {
        step.pivots.push_back(
            {static_cast<uint32_t>(i), pe.src, /*forward=*/true, pe.label});
      } else if (pe.src == var && pe.dst != var && is_bound(pe.dst)) {
        step.pivots.push_back(
            {static_cast<uint32_t>(i), pe.dst, /*forward=*/false, pe.label});
      }
    }

    if (!step.pivots.empty()) {
      step.source = PlanStep::Source::kAdjacency;
    } else {
      // Attr-join sources in predicate order — the runtime takes the first
      // whose value resolves, exactly like the interpreter's scan.
      for (size_t pi = 0; pi < p.predicates().size(); ++pi) {
        const auto& pred = p.predicates()[pi];
        if (pred.op != CmpOp::kEq) continue;
        if (PredicateUsesEdges(pred)) continue;
        const AttrOperand* self = nullptr;
        const AttrOperand* other = nullptr;
        if (pred.lhs.var == var) {
          self = &pred.lhs;
          other = &pred.rhs;
        } else if (pred.rhs.var == var) {
          self = &pred.rhs;
          other = &pred.lhs;
        } else {
          continue;
        }
        PlanAttrJoin join;
        join.pred_index = static_cast<uint32_t>(pi);
        join.attr = self->attr;
        if (other->var == kNoVar) {
          join.constant = other->constant;
        } else if (is_bound(other->var)) {
          join.other_var = other->var;
          join.other_attr = other->attr;
        } else {
          continue;
        }
        step.attr_joins.push_back(join);
      }
      step.source = step.attr_joins.empty() ? PlanStep::Source::kLabelScan
                                            : PlanStep::Source::kAttrJoin;
    }

    // Node predicates that become fully decidable when `var` binds: they
    // mention var and every other node var they reference is already bound.
    // Predicates that stay partially unbound would evaluate kUnknown (a
    // no-op) in the interpreter, so skipping them here changes nothing —
    // they land on the step of their last-bound variable.
    for (size_t j = 0; j < p.predicates().size(); ++j) {
      const auto& pred = p.predicates()[j];
      if (PredicateUsesEdges(pred)) continue;
      const bool involves = (!pred.lhs.is_edge && pred.lhs.var == var) ||
                            (!pred.rhs.is_edge && pred.rhs.var == var);
      if (!involves) continue;
      bool decidable = true;
      if (pred.op == CmpOp::kAbsent || pred.op == CmpOp::kPresent) {
        // Unary ops resolve from lhs alone (predicate.cc), so they decide
        // as soon as lhs does — even at a step that binds only the rhs var.
        decidable = pred.lhs.var == kNoVar || pred.lhs.var == var ||
                    is_bound(pred.lhs.var);
      } else {
        for (const AttrOperand* op : {&pred.lhs, &pred.rhs}) {
          if (op->var == kNoVar || op->var == var) continue;
          if (!is_bound(op->var)) decidable = false;
        }
      }
      if (decidable) step.preds.push_back(static_cast<uint32_t>(j));
    }

    bound |= 1u << var;
    body.steps.push_back(std::move(step));
  }
  return body;
}

}  // namespace

MatchPlan MatchPlan::Compile(const Pattern& pattern, const GraphView& g) {
  MatchPlan plan;
  plan.pattern_ = &pattern;
  if (pattern.NumNodes() == 0 || pattern.NumNodes() > 32) return plan;

  const auto t0 = std::chrono::steady_clock::now();

  // Every anchor shape the system searches with (see header).
  std::vector<uint32_t> masks;
  masks.push_back(0);
  for (VarId v = 0; v < pattern.NumNodes(); ++v) masks.push_back(1u << v);
  for (const auto& pe : pattern.edges())
    masks.push_back((1u << pe.src) | (1u << pe.dst));
  std::sort(masks.begin(), masks.end());
  masks.erase(std::unique(masks.begin(), masks.end()), masks.end());

  plan.bodies_.reserve(masks.size());
  for (uint32_t mask : masks)
    plan.bodies_.push_back(CompileBody(pattern, g, mask));
  plan.signature_ = CardinalitySignatureFor(pattern, g);
  plan.usable_ = true;

  if (obs::MetricsEnabled()) {
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    PlanMetrics& m = Metrics();
    m.compiles->Add(1);
    m.compile_us->Add(static_cast<uint64_t>(us));
  }
  return plan;
}

const PlanBody* MatchPlan::BodyFor(uint32_t anchor_mask) const {
  if (!usable_) return nullptr;
  auto it = std::lower_bound(
      bodies_.begin(), bodies_.end(), anchor_mask,
      [](const PlanBody& b, uint32_t mask) { return b.anchor_mask < mask; });
  if (it == bodies_.end() || it->anchor_mask != anchor_mask) return nullptr;
  return &*it;
}

bool MatchPlan::OrdersMatch(const GraphView& g) const {
  if (!usable_) return false;
  for (const PlanBody& body : bodies_) {
    uint32_t bound = body.anchor_mask;
    const auto is_bound = [&bound](VarId v) { return (bound >> v) & 1u; };
    for (const PlanStep& step : body.steps) {
      if (PickNextVarOrdered(g, *pattern_, is_bound) != step.var) return false;
      bound |= 1u << step.var;
    }
  }
  return true;
}

uint64_t MatchPlan::CardinalitySignatureFor(const Pattern& p,
                                            const GraphView& g) {
  uint64_t sig = 0;
  for (VarId v = 0; v < p.NumNodes(); ++v) {
    const SymbolId label = p.nodes()[v].label;
    sig += label == 0 ? g.NumNodes() : g.CountNodesWithLabel(label);
  }
  return sig;
}

namespace {

std::string VarName(const Pattern& p, VarId v) {
  const std::string& name = p.nodes()[v].var_name;
  if (!name.empty()) return name;
  char buf[16];
  std::snprintf(buf, sizeof(buf), "v%u", v);
  return buf;
}

std::string LabelName(const Vocabulary& vocab, SymbolId label) {
  return label == 0 ? "*" : vocab.LabelName(label);
}

}  // namespace

std::string MatchPlan::Explain(const Vocabulary& vocab) const {
  std::string out;
  char buf[256];
  if (!usable_) return "plan: unusable (interpreter fallback)\n";
  std::snprintf(buf, sizeof(buf), "plan: %zu bodies, signature %" PRIu64 "\n",
                bodies_.size(), signature_);
  out += buf;
  const Pattern& p = *pattern_;
  for (const PlanBody& body : bodies_) {
    if (body.anchor_mask == 0) {
      out += "body [unanchored]:\n";
    } else {
      out += "body [anchored:";
      for (VarId v = 0; v < p.NumNodes(); ++v)
        if ((body.anchor_mask >> v) & 1u) out += " " + VarName(p, v);
      out += "]:\n";
    }
    for (size_t i = 0; i < body.steps.size(); ++i) {
      const PlanStep& step = body.steps[i];
      std::snprintf(buf, sizeof(buf), "  step %zu: bind %s:%s via ", i + 1,
                    VarName(p, step.var).c_str(),
                    LabelName(vocab, step.label).c_str());
      out += buf;
      switch (step.source) {
        case PlanStep::Source::kAdjacency: {
          out += "adjacency(";
          for (size_t k = 0; k < step.pivots.size(); ++k) {
            const PlanPivot& piv = step.pivots[k];
            if (k) out += " ∩ ";
            std::snprintf(buf, sizeof(buf), "%s(%s)%s",
                          piv.forward ? "out" : "in",
                          VarName(p, piv.bound_var).c_str(),
                          piv.edge_label == 0
                              ? ""
                              : ("/" + LabelName(vocab, piv.edge_label))
                                    .c_str());
            out += buf;
          }
          out += ")";
          break;
        }
        case PlanStep::Source::kAttrJoin: {
          out += "attr-join(";
          for (size_t k = 0; k < step.attr_joins.size(); ++k) {
            const PlanAttrJoin& j = step.attr_joins[k];
            if (k) out += " | ";
            if (j.other_var == kNoVar) {
              std::snprintf(buf, sizeof(buf), "%s=\"%s\"",
                            vocab.AttrName(j.attr).c_str(),
                            vocab.ValueName(j.constant).c_str());
            } else {
              std::snprintf(buf, sizeof(buf), "%s=%s.%s",
                            vocab.AttrName(j.attr).c_str(),
                            VarName(p, j.other_var).c_str(),
                            vocab.AttrName(j.other_attr).c_str());
            }
            out += buf;
          }
          out += ")";
          break;
        }
        case PlanStep::Source::kLabelScan:
          out += "label-scan";
          break;
      }
      if (!step.self_loops.empty()) {
        std::snprintf(buf, sizeof(buf), " +%zu self-loop check%s",
                      step.self_loops.size(),
                      step.self_loops.size() == 1 ? "" : "s");
        out += buf;
      }
      if (!step.preds.empty()) {
        out += " then preds{";
        for (size_t k = 0; k < step.preds.size(); ++k) {
          if (k) out += ",";
          std::snprintf(buf, sizeof(buf), "#%u", step.preds[k]);
          out += buf;
        }
        out += "}";
      }
      out += "\n";
    }
  }
  return out;
}

namespace {

// Thread-local freelist backing ScratchLease: one live scratch per
// concurrent (possibly nested) search on the thread, buffers reused across
// searches so steady-state FindAll calls allocate nothing.
std::vector<std::unique_ptr<MatchScratch>>& ScratchFreelist() {
  static thread_local std::vector<std::unique_ptr<MatchScratch>> freelist;
  return freelist;
}

}  // namespace

ScratchLease::ScratchLease() {
  auto& fl = ScratchFreelist();
  if (fl.empty()) {
    s_ = std::make_unique<MatchScratch>();
  } else {
    s_ = std::move(fl.back());
    fl.pop_back();
  }
}

ScratchLease::~ScratchLease() {
  if (s_) ScratchFreelist().push_back(std::move(s_));
}

std::vector<MatchPlan> CompilePlans(
    const std::vector<const Pattern*>& patterns, const GraphView& g) {
  std::vector<MatchPlan> plans;
  plans.reserve(patterns.size());
  for (const Pattern* p : patterns) plans.push_back(MatchPlan::Compile(*p, g));
  return plans;
}

const MatchPlan* PlanCache::Get(size_t rule_index, const Pattern& pattern,
                                const GraphView& g, uint64_t generation) {
  if (entries_.size() <= rule_index) entries_.resize(rule_index + 1);
  if (entries_[rule_index] == nullptr)
    entries_[rule_index] = std::make_unique<Entry>();
  Entry& e = *entries_[rule_index];
  const bool metrics = obs::MetricsEnabled();
  if (e.valid && e.plan.pattern() == &pattern) {
    if (e.generation == generation) {
      ++stats_.hits;
      if (metrics) Metrics().cache_hits->Add(1);
      return &e.plan;
    }
    // New snapshot generation: if label cardinalities moved less than the
    // recompile threshold AND the cheap order re-derivation confirms the
    // cached orders, the cached plan is bit-identical to a fresh compile
    // (step metadata depends only on pattern + order) — keep it.
    const uint64_t old_sig = e.plan.CardinalitySignature();
    const uint64_t new_sig = MatchPlan::CardinalitySignatureFor(pattern, g);
    const uint64_t diff = new_sig > old_sig ? new_sig - old_sig
                                            : old_sig - new_sig;
    const bool small_shift =
        static_cast<double>(diff) <=
        static_cast<double>(old_sig) * shift_fraction_;
    if (small_shift && e.plan.OrdersMatch(g)) {
      e.generation = generation;
      ++stats_.revalidations;
      if (metrics) Metrics().cache_revalidations->Add(1);
      return &e.plan;
    }
  }
  e.plan = MatchPlan::Compile(pattern, g);
  e.generation = generation;
  e.valid = true;
  ++stats_.recompiles;
  if (metrics) Metrics().cache_misses->Add(1);
  return &e.plan;
}

void PlanCache::Clear() { entries_.clear(); }

std::shared_ptr<const std::vector<MatchPlan>> SharedPlanCache::Get(
    uint64_t generation, const std::vector<const Pattern*>& patterns,
    const GraphView& g) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : entries_)
      if (e.generation == generation) return e.plans;
  }
  // Compile outside the lock: the view is frozen, so concurrent compiles
  // for the same generation produce bit-identical plans and any one of
  // them may be the one cached.
  auto plans =
      std::make_shared<const std::vector<MatchPlan>>(CompilePlans(patterns, g));
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_)
    if (e.generation == generation) return e.plans;  // lost the race
  entries_.push_back(Entry{generation, plans});
  if (entries_.size() > max_generations_)
    entries_.erase(entries_.begin(),
                   entries_.begin() + (entries_.size() - max_generations_));
  return plans;
}

void SharedPlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace grepair
